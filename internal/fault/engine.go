package fault

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fabric"
	"rskip/internal/machine"
	"rskip/internal/obs"
)

// defaultBatch is the number of runs between early-stop checks and
// checkpoint saves.
const defaultBatch = 100

// Campaign runs up to cfg.N fault injections of the scheme on the
// instance. It is resilient by construction:
//
//   - Cancelling ctx stops the campaign promptly (in-flight runs are
//     interrupted through the machine's cancellation channel); the
//     partial Result — N reports how many runs completed — is
//     returned alongside an error wrapping ctx.Err().
//   - A panic inside a worker's interpreter run is contained and
//     classified CoreDump, with the panic value recorded in
//     Result.Errors; the campaign keeps going.
//   - With cfg.CheckpointPath set, progress persists after every
//     batch, and an interrupted campaign resumes from its checkpoint
//     to bit-identical final counts.
//   - With cfg.TargetCI set, the campaign stops early once the 95%
//     Wilson interval on the protection rate is tight enough.
func Campaign(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.N == 0 && !cfg.Exhaustive {
		cfg.N = 1000
	}

	ctx, sp := obs.Start(ctx, "fault/campaign")
	sp.SetAttr("scheme", s.String())
	sp.SetAttr("bench", p.Bench.Name)
	sp.SetAttr("n", cfg.N)
	defer sp.End()

	e, err := prepare(ctx, p, s, inst, cfg, nil)
	if err != nil {
		return Result{}, err
	}
	if e.cfg.Exhaustive {
		sp.SetAttr("exhaustive_n", e.cfg.N)
	}
	return e.execute(ctx, e.key)
}

// prepare builds the campaign engine every execution mode shares —
// the single-node Campaign loop, the explicit-plan compositional
// entry point, and the fabric Executor: config defaults, the
// fault-free profile run, the deterministic plan list (drawn,
// enumerated or caller-supplied), the record array and the campaign
// key. Because every downstream consumer starts from this one
// function, a shard of a fabric campaign and a batch of a single-node
// campaign are provably executing the same plans.
func prepare(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, cfg Config, plans []machine.FaultPlan) (*engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.N == 0 && !cfg.Exhaustive && plans == nil {
		cfg.N = 1000
	}
	if cfg.HangFactor == 0 {
		cfg.HangFactor = 50
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix
	}
	if cfg.Batch == 0 {
		cfg.Batch = defaultBatch
	}
	met := newCampaignMetrics(obs.From(ctx).M())
	met.campaigns.Inc()

	// Fault-free profile run of this scheme: golden output, region
	// size, instruction budget — plus, for stratified sampling, the
	// region layout trace the allocation derives from.
	var trace *machine.RegionTrace
	if cfg.Stratify {
		trace = &machine.RegionTrace{}
	}
	_, spp := obs.Start(ctx, "campaign/profile")
	profile, err := runProfile(p, s, inst, trace)
	spp.End()
	if err != nil {
		return nil, err
	}

	// Pre-draw (or enumerate) all fault plans so the campaign is
	// deterministic regardless of worker scheduling — and resumable by
	// index.
	e := &engine{
		p: p, s: s, inst: inst,
		golden: profile.Output,
		budget: runBudget(cfg, profile.Result.Instrs),
		met:    met,
	}
	switch {
	case plans != nil:
		e.plans = plans
	case cfg.Exhaustive:
		e.plans, err = enumeratePlans(cfg, profile.Result.Region)
		if err != nil {
			return nil, err
		}
		cfg.N = len(e.plans)
	case cfg.Stratify:
		if err := trace.Err(); err != nil {
			return nil, err
		}
		e.plans, e.strataOf, e.strata = stratifiedPlans(cfg, trace)
	default:
		e.plans = DrawPlans(cfg.Seed, cfg.N, cfg, profile.Result.Region)
	}
	e.cfg = cfg
	e.records = make([]RunRecord, cfg.N)
	e.key = CampaignKey(p, s, cfg)
	if plans != nil {
		// Explicit plans are not recoverable from the config, so the
		// campaign identity must cover their content.
		e.key += "|ph=" + plansHash(plans)
	}
	return e, nil
}

// CampaignWithPlans runs a campaign over an explicit, caller-supplied
// plan list instead of drawing plans from Config.Seed. It is the
// substrate of compositional analysis (internal/result): because a
// RunRecord is a pure function of (program, scheme, instance, plan,
// budget), partitioning one campaign's plan list and running each part
// through this entry point yields per-part counts that sum exactly to
// the undivided campaign's — the bit-identity the differential tests
// pin. N, sampling (Seed is ignored for drawing), Exhaustive, Stratify
// and TargetCI do not apply; the first is derived and the rest are
// rejected so a partition can never silently diverge from its whole.
func CampaignWithPlans(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, cfg Config, plans []machine.FaultPlan) (Result, error) {
	if cfg.Exhaustive || cfg.Stratify {
		return Result{}, &ConfigConflictError{Options: "explicit plans and Exhaustive/Stratify",
			Reason: "the caller supplies the plan list; there is no sampling or enumeration to configure"}
	}
	if cfg.TargetCI > 0 {
		return Result{}, &ConfigConflictError{Options: "explicit plans and TargetCI",
			Reason: "early stopping would run a prefix of the supplied plans, breaking the partition-sum identity compositional analysis relies on"}
	}
	if cfg.N != 0 && cfg.N != len(plans) {
		return Result{}, fmt.Errorf("fault: config: N = %d does not match %d supplied plans; leave N = 0", cfg.N, len(plans))
	}
	cfg.N = len(plans)
	if plans == nil {
		// A nil list means "zero plans", not "draw for me" — keep the
		// distinction prepare uses for the sampling modes.
		plans = []machine.FaultPlan{}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	ctx, sp := obs.Start(ctx, "fault/campaign_plans")
	sp.SetAttr("scheme", s.String())
	sp.SetAttr("bench", p.Bench.Name)
	sp.SetAttr("n", cfg.N)
	defer sp.End()

	e, err := prepare(ctx, p, s, inst, cfg, plans)
	if err != nil {
		return Result{}, err
	}
	return e.execute(ctx, e.key)
}

// execute drives the batched worker pool over the engine's prepared
// plan list: checkpoint resume, batch loop with checkpoint saves and
// progress snapshots, adaptive early stop, final aggregation.
func (e *engine) execute(ctx context.Context, key string) (Result, error) {
	cfg := e.cfg
	if cfg.CheckpointPath != "" {
		ck, err := LoadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return Result{}, err
		}
		if ck != nil {
			if err := ck.validateFor(key, cfg.N); err != nil {
				return Result{}, err
			}
			copy(e.records, ck.Records)
			e.met.skipped.Add(uint64(countDone(e.records)))
		}
	}

	stop := cfg.N // index bound of the aggregated (and attempted) runs
	earlyStopped := false
	var runErr error
batches:
	// The batch boundaries are fabric range splits: the same
	// arithmetic that decomposes a distributed campaign into shards
	// drives the single-node checkpoint/early-stop loop, so the two
	// execution modes can never disagree about range edges.
	for _, rng := range fabric.Ranges(cfg.N, cfg.Batch) {
		lo, hi := rng.Lo, rng.Hi
		_, spb := obs.Start(ctx, "campaign/batch")
		spb.SetAttr("lo", lo)
		spb.SetAttr("hi", hi)
		batchErr := e.runBatch(ctx, lo, hi)
		spb.End()
		if cfg.CheckpointPath != "" {
			ck := &Checkpoint{Version: checkpointVersion, Key: key, N: cfg.N,
				Done: countDone(e.records), Records: e.records}
			if serr := ck.Save(cfg.CheckpointPath); serr != nil && batchErr == nil {
				batchErr = serr
			} else if serr == nil {
				e.met.ckWrites.Inc()
			}
		}
		if cfg.OnProgress != nil {
			agg := e.aggregate(cfg.N)
			cfg.OnProgress(Progress{Done: agg.N, N: cfg.N, Result: agg})
		}
		if batchErr != nil {
			runErr = batchErr
			break batches
		}
		if cfg.TargetCI > 0 {
			agg := e.aggregate(hi)
			if lo2, hi2 := agg.ProtectionCI(); hi2-lo2 <= cfg.TargetCI {
				stop = hi
				earlyStopped = hi < cfg.N
				break batches
			}
		}
	}

	res := e.aggregate(stop)
	res.EarlyStopped = earlyStopped
	res.Exhaustive = cfg.Exhaustive
	if runErr != nil {
		return res, fmt.Errorf("fault: campaign interrupted after %d/%d runs: %w", res.N, cfg.N, runErr)
	}
	return res, nil
}

// runBudget resolves the per-run instruction budget: an explicit
// Config.Budget wins, otherwise HangFactor times the fault-free run.
func runBudget(cfg Config, faultFreeInstrs uint64) uint64 {
	if cfg.Budget > 0 {
		return cfg.Budget
	}
	return faultFreeInstrs * cfg.HangFactor
}

// DrawPlans pre-draws n fault plans of cfg's mix from the seed, with
// targets uniform over a population of count in-region indexes. A
// campaign's uniform sampler is DrawPlans over the whole region;
// compositional analysis (internal/result) draws each region's plans
// from a region-keyed seed over the region's own population and maps
// the local targets into the global stream. The draw sequence is part
// of the checkpoint contract: a given (seed, cfg, count) always yields
// the same plans.
func DrawPlans(seed int64, n int, cfg Config, count uint64) []machine.FaultPlan {
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix
	}
	rng := rand.New(rand.NewSource(seed))
	plans := make([]machine.FaultPlan, n)
	for i := range plans {
		plans[i] = machine.FaultPlan{
			Kind:   drawKind(rng, cfg.Mix),
			Target: uint64(rng.Int63n(int64(count))),
			Bit:    uint(rng.Intn(64)),
			Pick:   rng.Intn(1 << 20),
		}
		plans[i].Width = planWidth(plans[i].Kind, cfg)
	}
	return plans
}

// runProfile executes the fault-free reference run with the same
// panic containment the campaign gives injected runs — a scheme whose
// clean run crashes the interpreter should surface as an error, not
// kill the process.
func runProfile(p *core.Program, s core.Scheme, inst bench.Instance, trace *machine.RegionTrace) (o core.Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("fault: fault-free %s run panicked: %v", s, v)
		}
	}()
	o = p.Run(s, inst, core.RunOpts{RegionTrace: trace})
	if o.Err != nil {
		return o, fmt.Errorf("fault: fault-free %s run failed: %w", s, o.Err)
	}
	if o.Result.Region == 0 {
		return o, fmt.Errorf("fault: no detected-loop region executed under %s", s)
	}
	return o, nil
}

// campaignMetrics are the injection counters a campaign feeds. The
// handles are resolved once per campaign; workers update them with
// atomic adds. On a nil registry every handle is nil and every update
// a no-op.
type campaignMetrics struct {
	campaigns  *obs.Counter
	injections *obs.Counter
	skipped    *obs.Counter
	fired      *obs.Counter
	panics     *obs.Counter
	ckWrites   *obs.Counter
	classes    [NumClasses]*obs.Counter
	kinds      [machine.NumFaultKinds]*obs.Counter
}

func newCampaignMetrics(m *obs.Metrics) *campaignMetrics {
	cm := &campaignMetrics{
		campaigns:  m.Counter("fault_campaigns_total", "campaigns started"),
		injections: m.Counter("fault_injections_total", "injection runs executed"),
		skipped:    m.Counter("fault_injections_skipped_total", "injection runs resumed from a checkpoint instead of re-executed"),
		fired:      m.Counter("fault_fired_total", "injections whose fault actually struck"),
		panics:     m.Counter("fault_panics_contained_total", "worker panics contained as CoreDump"),
		ckWrites:   m.Counter("fault_checkpoint_writes_total", "checkpoint files written"),
	}
	for c := Correct; c < NumClasses; c++ {
		slug := strings.ReplaceAll(strings.ToLower(c.String()), " ", "_")
		cm.classes[c] = m.Counter("fault_class_"+slug+"_total", "runs classified "+c.String())
	}
	for k := range cm.kinds {
		kind := machine.FaultKind(k)
		slug := strings.ReplaceAll(kind.String(), "-", "_")
		cm.kinds[k] = m.Counter("fault_kind_"+slug+"_total", "injections of the "+kind.String()+" fault kind")
	}
	return cm
}

// record notes one completed injection run of the planned kind.
func (cm *campaignMetrics) record(rec *RunRecord, kind machine.FaultKind) {
	cm.injections.Inc()
	cm.classes[rec.Class].Inc()
	if int(kind) < len(cm.kinds) {
		cm.kinds[kind].Inc()
	}
	if rec.Fired {
		cm.fired.Inc()
	}
}

// engine holds the immutable campaign state shared by workers.
type engine struct {
	p       *core.Program
	s       core.Scheme
	inst    bench.Instance
	cfg     Config
	golden  []uint64
	budget  uint64
	plans   []machine.FaultPlan
	records []RunRecord
	met     *campaignMetrics
	// key is the campaign identity (CampaignKey, plus the plan hash
	// for explicit-plan campaigns) — the checkpoint key and the fabric
	// plan key are the same string by construction.
	key string
	// strataOf/strata describe a stratified campaign: plan i belongs
	// to stratum strataOf[i], whose class and weight are in strata.
	// Both are nil for unstratified campaigns.
	strataOf []int
	strata   []StratumResult
}

// runBatch executes every not-yet-done run in [lo, hi) on a worker
// pool. It returns ctx.Err() if cancelled; records written by
// in-flight workers before the cancellation are kept (they are valid
// completed runs and will not be re-executed on resume).
func (e *engine) runBatch(ctx context.Context, lo, hi int) error {
	workers := e.cfg.Workers
	if n := hi - lo; workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled machine per worker: replicas reuse the decoded
			// and compiled code, memory arena and register slabs through
			// machine.Reset instead of paying construction per injection.
			inj := e.p.NewInjector(e.s)
			defer inj.Close()
			for i := range idx {
				if rec, ok := e.runOne(ctx, inj, i); ok {
					e.records[i] = rec
					e.met.record(&rec, e.plans[i].Kind)
				}
			}
		}()
	}
feed:
	for i := lo; i < hi; i++ {
		if e.records[i].Done {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// runOne executes and classifies injection i on the worker's pooled
// injector. The recover barrier turns an interpreter panic into a
// CoreDump record — the simulated machine's own failure modes are part
// of the fault model, not a tooling hazard — and discards the pooled
// machine, whose state a panic may have left arbitrarily corrupt.
// ok=false means the run did not complete (campaign cancelled) and
// must not be recorded.
func (e *engine) runOne(ctx context.Context, inj *core.Injector, i int) (rec RunRecord, ok bool) {
	defer func() {
		if v := recover(); v != nil {
			inj.Discard()
			rec = RunRecord{Done: true, Class: CoreDump, Err: fmt.Sprintf("panic: %v", v)}
			ok = true
			e.met.panics.Inc()
		}
	}()
	if ctx.Err() != nil {
		return RunRecord{}, false
	}
	rctx := ctx
	if e.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, e.cfg.RunTimeout)
		defer cancel()
	}
	// The hook runs after the per-run deadline starts ticking, so a
	// hook that sleeps past RunTimeout deterministically expires the
	// deadline before the run begins.
	if e.cfg.runHook != nil {
		e.cfg.runHook(i)
	}
	plan := e.plans[i]
	o := inj.Run(e.inst, core.RunOpts{Fault: &plan, MaxInstrs: e.budget, Cancel: rctx.Done()})
	if _, cancelled := o.Err.(*machine.CancelError); cancelled {
		if ctx.Err() != nil {
			// Campaign-level cancellation: the run is incomplete.
			return RunRecord{}, false
		}
		// Per-run deadline exceeded: a wall-clock hang.
		return RunRecord{Done: true, Class: Hang, Fired: o.FaultFired,
			Err: fmt.Sprintf("run exceeded deadline %v", e.cfg.RunTimeout)}, true
	}
	cls, fn, recov := classify(&o, e.golden)
	r := RunRecord{Done: true, Class: cls, Fired: o.FaultFired, FalseNeg: fn, Recovered: recov}
	if o.Err != nil {
		r.Err = o.Err.Error()
	}
	return r, true
}

// aggregate folds records[:stop] into a Result. Because each record
// is a pure function of its index, the aggregate is independent of
// worker count, interruption and resume history.
func (e *engine) aggregate(stop int) Result {
	return e.aggregateRecords(e.records, stop)
}

// aggregateRecords folds recs[:stop] into a Result using the
// engine's stratification tables. It is the one aggregation in the
// package: the single-node path feeds it the engine's own record
// array, and the fabric merge feeds it records reassembled from
// shards — identical inputs, identical fold, identical figures.
func (e *engine) aggregateRecords(recs []RunRecord, stop int) Result {
	res := Result{Scheme: e.s, Requested: e.cfg.N}
	if e.strata != nil {
		// Fresh copies: aggregate runs repeatedly (per batch, final)
		// and must not accumulate into shared skeletons.
		res.Strata = make([]StratumResult, len(e.strata))
		copy(res.Strata, e.strata)
	}
	for i := 0; i < stop; i++ {
		rec := &recs[i]
		if !rec.Done {
			continue
		}
		if e.strataOf != nil {
			st := &res.Strata[e.strataOf[i]]
			st.N++
			st.Counts[rec.Class]++
			if rec.Class == Correct || rec.Class == Detected {
				st.Protected++
			}
		}
		res.N++
		res.Counts[rec.Class]++
		if rec.Fired {
			res.Fired++
		}
		if rec.FalseNeg {
			res.FalseNeg++
		}
		if rec.Recovered {
			res.Recovered++
		}
		if rec.Err != "" {
			if res.Errors == nil {
				res.Errors = map[Class]map[string]int{}
			}
			byMsg := res.Errors[rec.Class]
			if byMsg == nil {
				byMsg = map[string]int{}
				res.Errors[rec.Class] = byMsg
			}
			byMsg[rec.Err]++
		}
	}
	return res
}

func countDone(recs []RunRecord) int {
	n := 0
	for i := range recs {
		if recs[i].Done {
			n++
		}
	}
	return n
}
