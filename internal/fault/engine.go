package fault

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
	"rskip/internal/obs"
)

// defaultBatch is the number of runs between early-stop checks and
// checkpoint saves.
const defaultBatch = 100

// Campaign runs up to cfg.N fault injections of the scheme on the
// instance. It is resilient by construction:
//
//   - Cancelling ctx stops the campaign promptly (in-flight runs are
//     interrupted through the machine's cancellation channel); the
//     partial Result — N reports how many runs completed — is
//     returned alongside an error wrapping ctx.Err().
//   - A panic inside a worker's interpreter run is contained and
//     classified CoreDump, with the panic value recorded in
//     Result.Errors; the campaign keeps going.
//   - With cfg.CheckpointPath set, progress persists after every
//     batch, and an interrupted campaign resumes from its checkpoint
//     to bit-identical final counts.
//   - With cfg.TargetCI set, the campaign stops early once the 95%
//     Wilson interval on the protection rate is tight enough.
func Campaign(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.N == 0 && !cfg.Exhaustive {
		cfg.N = 1000
	}
	if cfg.HangFactor == 0 {
		cfg.HangFactor = 50
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix
	}
	if cfg.Batch == 0 {
		cfg.Batch = defaultBatch
	}

	ctx, sp := obs.Start(ctx, "fault/campaign")
	sp.SetAttr("scheme", s.String())
	sp.SetAttr("bench", p.Bench.Name)
	sp.SetAttr("n", cfg.N)
	defer sp.End()
	met := newCampaignMetrics(obs.From(ctx).M())
	met.campaigns.Inc()

	// Fault-free profile run of this scheme: golden output, region
	// size, instruction budget.
	_, spp := obs.Start(ctx, "campaign/profile")
	profile, err := runProfile(p, s, inst)
	spp.End()
	if err != nil {
		return Result{}, err
	}

	// Pre-draw (or enumerate) all fault plans so the campaign is
	// deterministic regardless of worker scheduling — and resumable by
	// index.
	var plans []machine.FaultPlan
	if cfg.Exhaustive {
		plans, err = enumeratePlans(cfg, profile.Result.Region)
		if err != nil {
			return Result{}, err
		}
		cfg.N = len(plans)
		sp.SetAttr("exhaustive_n", cfg.N)
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		plans = make([]machine.FaultPlan, cfg.N)
		for i := range plans {
			plans[i] = machine.FaultPlan{
				Kind:   drawKind(rng, cfg.Mix),
				Target: uint64(rng.Int63n(int64(profile.Result.Region))),
				Bit:    uint(rng.Intn(64)),
				Pick:   rng.Intn(1 << 20),
			}
			plans[i].Width = planWidth(plans[i].Kind, cfg)
		}
	}

	e := &engine{
		p: p, s: s, inst: inst, cfg: cfg,
		golden:  profile.Output,
		budget:  profile.Result.Instrs * cfg.HangFactor,
		plans:   plans,
		records: make([]RunRecord, cfg.N),
		met:     met,
	}

	key := checkpointKey(p, s, cfg)
	if cfg.CheckpointPath != "" {
		ck, err := LoadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return Result{}, err
		}
		if ck != nil {
			if err := ck.validateFor(key, cfg.N); err != nil {
				return Result{}, err
			}
			copy(e.records, ck.Records)
			met.skipped.Add(uint64(countDone(e.records)))
		}
	}

	stop := cfg.N // index bound of the aggregated (and attempted) runs
	earlyStopped := false
	var runErr error
batches:
	for lo := 0; lo < cfg.N; lo += cfg.Batch {
		hi := lo + cfg.Batch
		if hi > cfg.N {
			hi = cfg.N
		}
		_, spb := obs.Start(ctx, "campaign/batch")
		spb.SetAttr("lo", lo)
		spb.SetAttr("hi", hi)
		batchErr := e.runBatch(ctx, lo, hi)
		spb.End()
		if cfg.CheckpointPath != "" {
			ck := &Checkpoint{Version: checkpointVersion, Key: key, N: cfg.N,
				Done: countDone(e.records), Records: e.records}
			if serr := ck.Save(cfg.CheckpointPath); serr != nil && batchErr == nil {
				batchErr = serr
			} else if serr == nil {
				met.ckWrites.Inc()
			}
		}
		if cfg.OnProgress != nil {
			agg := e.aggregate(cfg.N)
			cfg.OnProgress(Progress{Done: agg.N, N: cfg.N, Result: agg})
		}
		if batchErr != nil {
			runErr = batchErr
			break batches
		}
		if cfg.TargetCI > 0 {
			agg := e.aggregate(hi)
			if lo2, hi2 := agg.ProtectionCI(); hi2-lo2 <= cfg.TargetCI {
				stop = hi
				earlyStopped = hi < cfg.N
				break batches
			}
		}
	}

	res := e.aggregate(stop)
	res.EarlyStopped = earlyStopped
	res.Exhaustive = cfg.Exhaustive
	if runErr != nil {
		return res, fmt.Errorf("fault: campaign interrupted after %d/%d runs: %w", res.N, cfg.N, runErr)
	}
	return res, nil
}

// runProfile executes the fault-free reference run with the same
// panic containment the campaign gives injected runs — a scheme whose
// clean run crashes the interpreter should surface as an error, not
// kill the process.
func runProfile(p *core.Program, s core.Scheme, inst bench.Instance) (o core.Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("fault: fault-free %s run panicked: %v", s, v)
		}
	}()
	o = p.Run(s, inst, core.RunOpts{})
	if o.Err != nil {
		return o, fmt.Errorf("fault: fault-free %s run failed: %w", s, o.Err)
	}
	if o.Result.Region == 0 {
		return o, fmt.Errorf("fault: no detected-loop region executed under %s", s)
	}
	return o, nil
}

// campaignMetrics are the injection counters a campaign feeds. The
// handles are resolved once per campaign; workers update them with
// atomic adds. On a nil registry every handle is nil and every update
// a no-op.
type campaignMetrics struct {
	campaigns  *obs.Counter
	injections *obs.Counter
	skipped    *obs.Counter
	fired      *obs.Counter
	panics     *obs.Counter
	ckWrites   *obs.Counter
	classes    [NumClasses]*obs.Counter
	kinds      [machine.NumFaultKinds]*obs.Counter
}

func newCampaignMetrics(m *obs.Metrics) *campaignMetrics {
	cm := &campaignMetrics{
		campaigns:  m.Counter("fault_campaigns_total", "campaigns started"),
		injections: m.Counter("fault_injections_total", "injection runs executed"),
		skipped:    m.Counter("fault_injections_skipped_total", "injection runs resumed from a checkpoint instead of re-executed"),
		fired:      m.Counter("fault_fired_total", "injections whose fault actually struck"),
		panics:     m.Counter("fault_panics_contained_total", "worker panics contained as CoreDump"),
		ckWrites:   m.Counter("fault_checkpoint_writes_total", "checkpoint files written"),
	}
	for c := Correct; c < NumClasses; c++ {
		slug := strings.ReplaceAll(strings.ToLower(c.String()), " ", "_")
		cm.classes[c] = m.Counter("fault_class_"+slug+"_total", "runs classified "+c.String())
	}
	for k := range cm.kinds {
		kind := machine.FaultKind(k)
		slug := strings.ReplaceAll(kind.String(), "-", "_")
		cm.kinds[k] = m.Counter("fault_kind_"+slug+"_total", "injections of the "+kind.String()+" fault kind")
	}
	return cm
}

// record notes one completed injection run of the planned kind.
func (cm *campaignMetrics) record(rec *RunRecord, kind machine.FaultKind) {
	cm.injections.Inc()
	cm.classes[rec.Class].Inc()
	if int(kind) < len(cm.kinds) {
		cm.kinds[kind].Inc()
	}
	if rec.Fired {
		cm.fired.Inc()
	}
}

// engine holds the immutable campaign state shared by workers.
type engine struct {
	p       *core.Program
	s       core.Scheme
	inst    bench.Instance
	cfg     Config
	golden  []uint64
	budget  uint64
	plans   []machine.FaultPlan
	records []RunRecord
	met     *campaignMetrics
}

// runBatch executes every not-yet-done run in [lo, hi) on a worker
// pool. It returns ctx.Err() if cancelled; records written by
// in-flight workers before the cancellation are kept (they are valid
// completed runs and will not be re-executed on resume).
func (e *engine) runBatch(ctx context.Context, lo, hi int) error {
	workers := e.cfg.Workers
	if n := hi - lo; workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled machine per worker: replicas reuse the decoded
			// and compiled code, memory arena and register slabs through
			// machine.Reset instead of paying construction per injection.
			inj := e.p.NewInjector(e.s)
			defer inj.Close()
			for i := range idx {
				if rec, ok := e.runOne(ctx, inj, i); ok {
					e.records[i] = rec
					e.met.record(&rec, e.plans[i].Kind)
				}
			}
		}()
	}
feed:
	for i := lo; i < hi; i++ {
		if e.records[i].Done {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// runOne executes and classifies injection i on the worker's pooled
// injector. The recover barrier turns an interpreter panic into a
// CoreDump record — the simulated machine's own failure modes are part
// of the fault model, not a tooling hazard — and discards the pooled
// machine, whose state a panic may have left arbitrarily corrupt.
// ok=false means the run did not complete (campaign cancelled) and
// must not be recorded.
func (e *engine) runOne(ctx context.Context, inj *core.Injector, i int) (rec RunRecord, ok bool) {
	defer func() {
		if v := recover(); v != nil {
			inj.Discard()
			rec = RunRecord{Done: true, Class: CoreDump, Err: fmt.Sprintf("panic: %v", v)}
			ok = true
			e.met.panics.Inc()
		}
	}()
	if ctx.Err() != nil {
		return RunRecord{}, false
	}
	rctx := ctx
	if e.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, e.cfg.RunTimeout)
		defer cancel()
	}
	// The hook runs after the per-run deadline starts ticking, so a
	// hook that sleeps past RunTimeout deterministically expires the
	// deadline before the run begins.
	if e.cfg.runHook != nil {
		e.cfg.runHook(i)
	}
	plan := e.plans[i]
	o := inj.Run(e.inst, core.RunOpts{Fault: &plan, MaxInstrs: e.budget, Cancel: rctx.Done()})
	if _, cancelled := o.Err.(*machine.CancelError); cancelled {
		if ctx.Err() != nil {
			// Campaign-level cancellation: the run is incomplete.
			return RunRecord{}, false
		}
		// Per-run deadline exceeded: a wall-clock hang.
		return RunRecord{Done: true, Class: Hang, Fired: o.FaultFired,
			Err: fmt.Sprintf("run exceeded deadline %v", e.cfg.RunTimeout)}, true
	}
	cls, fn, recov := classify(&o, e.golden)
	r := RunRecord{Done: true, Class: cls, Fired: o.FaultFired, FalseNeg: fn, Recovered: recov}
	if o.Err != nil {
		r.Err = o.Err.Error()
	}
	return r, true
}

// aggregate folds records[:stop] into a Result. Because each record
// is a pure function of its index, the aggregate is independent of
// worker count, interruption and resume history.
func (e *engine) aggregate(stop int) Result {
	res := Result{Scheme: e.s, Requested: e.cfg.N}
	for i := 0; i < stop; i++ {
		rec := &e.records[i]
		if !rec.Done {
			continue
		}
		res.N++
		res.Counts[rec.Class]++
		if rec.Fired {
			res.Fired++
		}
		if rec.FalseNeg {
			res.FalseNeg++
		}
		if rec.Recovered {
			res.Recovered++
		}
		if rec.Err != "" {
			if res.Errors == nil {
				res.Errors = map[Class]map[string]int{}
			}
			byMsg := res.Errors[rec.Class]
			if byMsg == nil {
				byMsg = map[string]int{}
				res.Errors[rec.Class] = byMsg
			}
			byMsg[rec.Err]++
		}
	}
	return res
}

func countDone(recs []RunRecord) int {
	n := 0
	for i := range recs {
		if recs[i].Done {
			n++
		}
	}
	return n
}
