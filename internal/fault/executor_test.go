package fault

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"rskip/internal/core"
)

// The executor exactness contract: executing a campaign's index
// ranges out of order (and redundantly) through an Executor, then
// aggregating the reassembled records, must equal fault.Campaign over
// the same config bit-for-bit.
func TestExecutorMatchesCampaign(t *testing.T) {
	p, inst := sharedConv1d(t)
	cfg := Config{N: 60, Seed: 7, Workers: 2, Batch: 16}

	want, err := Campaign(context.Background(), p, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}

	x, err := NewExecutor(context.Background(), p, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if x.N() != cfg.N {
		t.Fatalf("N = %d, want %d", x.N(), cfg.N)
	}
	// Out-of-order ranges, with an overlap re-run ([20,40) twice) to
	// prove re-leased shards are harmless.
	for _, r := range [][2]int{{40, 60}, {20, 40}, {0, 20}, {20, 40}} {
		if err := x.RunRange(context.Background(), r[0], r[1]); err != nil {
			t.Fatalf("RunRange(%v): %v", r, err)
		}
	}
	recs := make([]RunRecord, 0, cfg.N)
	for _, r := range [][2]int{{0, 20}, {20, 40}, {40, 60}} {
		part, err := x.Records(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, part...)
	}
	got, err := x.Aggregate(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("executor aggregate diverged from campaign:\n got %+v\nwant %+v", got, want)
	}
}

// Executor keys must equal the single-node checkpoint key: that
// equality is what lets a worker cross-check a coordinator's plan key
// against its own config, and what guarantees both modes draw the
// same plans.
func TestExecutorKeyMatchesCampaignKey(t *testing.T) {
	p, inst := sharedConv1d(t)
	cfg := Config{N: 10, Seed: 3}
	x, err := NewExecutor(context.Background(), p, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CampaignKey of the defaulted config (prepare fills HangFactor,
	// Mix, Workers, Batch; only HangFactor and Mix are key-relevant).
	dcfg := cfg
	dcfg.HangFactor = 50
	dcfg.Mix = DefaultMix
	if want := CampaignKey(p, core.RSkip, dcfg); x.Key() != want {
		t.Fatalf("executor key %q\nwant campaign key %q", x.Key(), want)
	}
}

func TestExecutorRejectsSingleNodeOnlyOptions(t *testing.T) {
	p, inst := sharedConv1d(t)
	for name, cfg := range map[string]Config{
		"TargetCI":       {N: 10, TargetCI: 0.05},
		"CheckpointPath": {N: 10, CheckpointPath: t.TempDir() + "/ck.json"},
		"RunTimeout":     {N: 10, RunTimeout: time.Second},
	} {
		_, err := NewExecutor(context.Background(), p, core.RSkip, inst, cfg)
		var conflict *ConfigConflictError
		if !errors.As(err, &conflict) {
			t.Errorf("%s: NewExecutor err = %v, want ConfigConflictError", name, err)
		}
	}
}

func TestExecutorRangeValidation(t *testing.T) {
	p, inst := sharedConv1d(t)
	x, err := NewExecutor(context.Background(), p, core.RSkip, inst, Config{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 5}, {0, 11}, {7, 3}} {
		if err := x.RunRange(context.Background(), r[0], r[1]); err == nil {
			t.Errorf("RunRange(%v) accepted an out-of-plan range", r)
		}
		if _, err := x.Records(r[0], r[1]); err == nil {
			t.Errorf("Records(%v) accepted an out-of-plan range", r)
		}
	}
	if _, err := x.Aggregate(make([]RunRecord, 5)); err == nil {
		t.Error("Aggregate accepted a short record array")
	}
	if _, err := x.AggregatePrefix(make([]RunRecord, 10), 11); err == nil {
		t.Error("AggregatePrefix accepted stop > N")
	}
}
