package fault

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rskip/internal/core"
	"rskip/internal/machine"
)

// Stratify conflicts with exhaustive enumeration and adaptive
// sampling; both rejections must be the typed config error so callers
// can map them to usage errors.
func TestStratifyConfigConflicts(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"stratify x exhaustive", Config{Stratify: true, Exhaustive: true, Mix: Mix{Skip: 1}}},
		{"stratify x target ci", Config{Stratify: true, TargetCI: 2}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			var ce *ConfigConflictError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v (%T), want *ConfigConflictError", err, err)
			}
			if ce.Reason == "" || ce.Options == "" {
				t.Errorf("conflict error lacks options/reason: %+v", ce)
			}
		})
	}
	good := Config{Stratify: true, N: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("plain stratified config rejected: %v", err)
	}
	withCk := Config{Stratify: true, N: 100, CheckpointPath: "x.json"}
	if err := withCk.Validate(); err != nil {
		t.Errorf("stratified config with checkpointing rejected: %v", err)
	}
}

// Largest-remainder allocation must hand out exactly n replicas, only
// to populated classes, proportionally to population.
func TestStratifiedAllocation(t *testing.T) {
	var byClass [machine.NumOpClasses]classIntervals
	byClass[machine.ClassALU].count = 700
	byClass[machine.ClassMem].count = 200
	byClass[machine.ClassBranch].count = 99
	byClass[machine.ClassFloat].count = 1
	total := uint64(1000)
	for _, n := range []int{1, 7, 100, 997, 5000} {
		alloc := allocate(&byClass, total, n)
		sum := 0
		for c, k := range alloc {
			sum += k
			if byClass[c].count == 0 && k != 0 {
				t.Errorf("n=%d: empty class %v allocated %d replicas", n, machine.OpClass(c), k)
			}
		}
		if sum != n {
			t.Errorf("n=%d: allocation sums to %d", n, sum)
		}
	}
	// Proportionality at a round count.
	alloc := allocate(&byClass, total, 1000)
	if alloc[machine.ClassALU] != 700 || alloc[machine.ClassMem] != 200 {
		t.Errorf("n=1000 allocation %v, want exact population proportions", alloc)
	}
	// A one-instruction class still gets sampled at large n.
	if alloc[machine.ClassFloat] == 0 {
		t.Error("rare class starved at n=1000")
	}
}

// Every stratified plan must target an instruction of its stratum's
// class — the draw maps class-local indexes through the trace layout.
func TestStratifiedPlansLandInClass(t *testing.T) {
	p, inst := sharedConv1d(t)
	trace := &machine.RegionTrace{}
	profile, err := runProfile(p, core.SWIFT, inst, trace)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Total() != profile.Result.Region {
		t.Fatalf("trace total %d != region %d", trace.Total(), profile.Result.Region)
	}

	// Flat position -> class lookup from the spans.
	classAt := make([]machine.OpClass, trace.Total())
	pos := 0
	for _, sp := range trace.Spans() {
		for i := uint64(0); i < sp.N; i++ {
			classAt[pos] = sp.Class
			pos++
		}
	}

	cfg := Config{N: 300, Seed: 7, Stratify: true, Mix: DefaultMix}
	plans, strataOf, strata := stratifiedPlans(cfg, trace)
	if len(plans) != cfg.N || len(strataOf) != cfg.N {
		t.Fatalf("got %d plans / %d strata indexes, want %d", len(plans), len(strataOf), cfg.N)
	}
	if len(strata) < 2 {
		t.Fatalf("conv1d produced %d strata; expected several instruction classes", len(strata))
	}
	wsum := 0.0
	for _, st := range strata {
		wsum += st.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("stratum weights sum to %g, want 1", wsum)
	}
	for i, pl := range plans {
		st := strata[strataOf[i]]
		if pl.Target >= trace.Total() {
			t.Fatalf("plan %d targets %d beyond the region (%d)", i, pl.Target, trace.Total())
		}
		if got := classAt[pl.Target]; got != st.Class {
			t.Fatalf("plan %d targets a %v instruction but belongs to the %v stratum", i, got, st.Class)
		}
	}

	// Determinism: the same seed and layout draw the same plans.
	again, _, _ := stratifiedPlans(cfg, trace)
	if !reflect.DeepEqual(plans, again) {
		t.Error("stratified plan generation is not deterministic")
	}
	// A different seed draws different plans.
	cfg.Seed = 8
	other, _, _ := stratifiedPlans(cfg, trace)
	if reflect.DeepEqual(plans, other) {
		t.Error("seed change did not change the stratified plans")
	}
}

// A stratified campaign must report per-stratum counts that partition
// the pooled counts, and its weighted protection estimate must stay
// inside its own merged CI.
func TestStratifiedCampaignResult(t *testing.T) {
	p, inst := sharedConv1d(t)
	res, err := Campaign(context.Background(), p, core.SWIFT, inst,
		Config{N: 200, Seed: 11, Stratify: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strata) == 0 {
		t.Fatal("stratified campaign reported no strata")
	}
	var n, protected int
	var counts [NumClasses]int
	for _, st := range res.Strata {
		n += st.N
		protected += st.Protected
		for c, k := range st.Counts {
			counts[c] += k
		}
		if st.Protected != st.Counts[Correct]+st.Counts[Detected] {
			t.Errorf("stratum %v: Protected %d != Correct+Detected %d",
				st.Class, st.Protected, st.Counts[Correct]+st.Counts[Detected])
		}
	}
	if n != res.N || counts != res.Counts {
		t.Errorf("strata partition (%d runs, %v) != pooled (%d, %v)", n, counts, res.N, res.Counts)
	}
	rate := res.ProtectionRate()
	lo, hi := res.ProtectionCI()
	if !(0 <= lo && lo <= rate && rate <= hi && hi <= 100) {
		t.Errorf("stratified CI [%g, %g] does not bracket rate %g", lo, hi, rate)
	}
}

// A stratified campaign interrupted mid-flight and resumed from its
// checkpoint must aggregate bit-identically to an uninterrupted one —
// the regression pinning Stratify x CheckpointPath interoperation.
func TestStratifiedResumeBitIdentical(t *testing.T) {
	p, inst := sharedConv1d(t)
	cfg := Config{N: 200, Seed: 5, Stratify: true, Batch: 40, Workers: 2}

	uncut, err := Campaign(context.Background(), p, core.SWIFTR, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cut := cfg
	cut.CheckpointPath = filepath.Join(t.TempDir(), "strat.ck.json")
	cut.runHook = func(i int) {
		if i == 90 {
			cancel()
		}
	}
	partial, err := Campaign(ctx, p, core.SWIFTR, inst, cut)
	if err == nil {
		t.Fatal("interrupted campaign reported no error")
	}
	if partial.N >= uncut.N {
		t.Fatalf("interruption did not interrupt: %d of %d runs completed", partial.N, uncut.N)
	}

	cut.runHook = nil
	resumed, err := Campaign(context.Background(), p, core.SWIFTR, inst, cut)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(resumed, uncut) {
		t.Errorf("resumed stratified result diverged:\nresumed %+v\nuncut   %+v", resumed, uncut)
	}
}

// A stratified campaign must never resume a uniform campaign's
// checkpoint (the same seed draws a different plan list).
func TestStratifiedCheckpointKeyDistinct(t *testing.T) {
	p, inst := sharedConv1d(t)
	ckPath := filepath.Join(t.TempDir(), "cross.ck.json")
	uniform := Config{N: 60, Seed: 3, Batch: 30, CheckpointPath: ckPath}
	if _, err := Campaign(context.Background(), p, core.Unsafe, inst, uniform); err != nil {
		t.Fatal(err)
	}
	strat := uniform
	strat.Stratify = true
	_, err := Campaign(context.Background(), p, core.Unsafe, inst, strat)
	if err == nil {
		t.Fatal("stratified campaign resumed a uniform checkpoint")
	}
	if !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("cross-resume error %q does not identify the key mismatch", err)
	}
}

// The partition-sum identity at the fault layer: running a plan list
// whole or split into parts must produce counts that sum exactly.
func TestCampaignWithPlansPartitionIdentity(t *testing.T) {
	p, inst := sharedConv1d(t)
	trace := &machine.RegionTrace{}
	if _, err := runProfile(p, core.SWIFT, inst, trace); err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 90, Seed: 17, Stratify: true}
	plans, _, _ := stratifiedPlans(cfg, trace)

	whole, err := CampaignWithPlans(context.Background(), p, core.SWIFT, inst, Config{Workers: 2}, plans)
	if err != nil {
		t.Fatal(err)
	}
	if whole.N != len(plans) {
		t.Fatalf("whole campaign completed %d/%d runs", whole.N, len(plans))
	}
	var sum [NumClasses]int
	var fired, falseNeg, recovered int
	for _, part := range [][]machine.FaultPlan{plans[:31], plans[31:70], plans[70:]} {
		res, err := CampaignWithPlans(context.Background(), p, core.SWIFT, inst, Config{Workers: 2}, part)
		if err != nil {
			t.Fatal(err)
		}
		for c, k := range res.Counts {
			sum[c] += k
		}
		fired += res.Fired
		falseNeg += res.FalseNeg
		recovered += res.Recovered
	}
	if sum != whole.Counts || fired != whole.Fired || falseNeg != whole.FalseNeg || recovered != whole.Recovered {
		t.Errorf("partition sums diverge from whole:\nparts %v fired=%d fn=%d rec=%d\nwhole %v fired=%d fn=%d rec=%d",
			sum, fired, falseNeg, recovered, whole.Counts, whole.Fired, whole.FalseNeg, whole.Recovered)
	}
}

// CampaignWithPlans is a partition primitive, not a sampler: sampling
// and early-stop options must be rejected, and the checkpoint identity
// must distinguish different plan lists.
func TestCampaignWithPlansRejections(t *testing.T) {
	p, inst := sharedConv1d(t)
	plans := []machine.FaultPlan{{Kind: machine.FaultRegFile, Target: 0, Bit: 1, Pick: 2}}
	for name, cfg := range map[string]Config{
		"target ci":  {TargetCI: 1},
		"exhaustive": {Exhaustive: true, Mix: Mix{Skip: 1}},
		"stratify":   {Stratify: true},
	} {
		_, err := CampaignWithPlans(context.Background(), p, core.Unsafe, inst, cfg, plans)
		var ce *ConfigConflictError
		if !errors.As(err, &ce) {
			t.Errorf("%s: got %v (%T), want *ConfigConflictError", name, err, err)
		}
	}
	if _, err := CampaignWithPlans(context.Background(), p, core.Unsafe, inst, Config{N: 5}, plans); err == nil {
		t.Error("N mismatching the plan count was accepted")
	}

	// Distinct plan lists of equal length must not share a checkpoint.
	ckPath := filepath.Join(t.TempDir(), "plans.ck.json")
	first := []machine.FaultPlan{{Kind: machine.FaultRegFile, Target: 1, Bit: 3, Pick: 9}}
	if _, err := CampaignWithPlans(context.Background(), p, core.Unsafe, inst, Config{CheckpointPath: ckPath}, first); err != nil {
		t.Fatal(err)
	}
	second := []machine.FaultPlan{{Kind: machine.FaultRegFile, Target: 2, Bit: 3, Pick: 9}}
	_, err := CampaignWithPlans(context.Background(), p, core.Unsafe, inst, Config{CheckpointPath: ckPath}, second)
	if err == nil {
		t.Fatal("a different plan list resumed the first list's checkpoint")
	}
	if !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("cross-plan resume error %q does not identify the key mismatch", err)
	}
}
