package experiments

import (
	"strings"
	"testing"

	"rskip/internal/fault"
)

// quickCtx returns a context sized for test runs.
func quickCtx() *Context {
	c := New()
	c.Quick = true
	c.TrainSeeds = 2
	c.FaultN = 60
	return c
}

func TestTable1(t *testing.T) {
	c := quickCtx()
	out, err := c.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"conv1d", "blackscholes", "yolo", "lud"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "blkschls") {
		t.Error("blackscholes memo callee missing from Table 1")
	}
}

func TestFig2(t *testing.T) {
	c := quickCtx()
	out, err := c.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "average") {
		t.Errorf("Fig2 output incomplete:\n%s", out)
	}
}

func TestCostRatio(t *testing.T) {
	c := quickCtx()
	out, err := c.CostRatio()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dynamic interpolation", "approximate memoization", "re-computation"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost ratio missing %q:\n%s", want, out)
		}
	}
}

func TestMemoExperiment(t *testing.T) {
	c := quickCtx()
	out, err := c.Memo()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "histogram") || !strings.Contains(out, "uniform") {
		t.Errorf("memo comparison incomplete:\n%s", out)
	}
}

func TestFig8a(t *testing.T) {
	c := quickCtx()
	out, err := c.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DI-only") || !strings.Contains(out, "DI+AM") {
		t.Errorf("Fig8a incomplete:\n%s", out)
	}
}

func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaigns are slow")
	}
	c := quickCtx()
	c.FaultN = 40
	rows, out, err := c.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9*6 { // 9 benchmarks × (UNSAFE, SWIFT-R, 4 ARs)
		t.Errorf("got %d campaign rows, want 54", len(rows))
	}
	if !strings.Contains(out, "Figure 9a") || !strings.Contains(out, "Figure 9b") {
		t.Errorf("Fig9 output incomplete")
	}
}

func TestFig7Quick(t *testing.T) {
	c := quickCtx()
	rows, out, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// 9 benchmarks × (SWIFT-R + 4 ARs).
	if len(rows) != 9*5 {
		t.Errorf("got %d perf rows, want 45", len(rows))
	}
	for _, r := range rows {
		if r.Time <= 0 || r.Instrs <= 0 {
			t.Errorf("%s/%s: non-positive normalized numbers: %+v", r.Bench, r.Scheme, r)
		}
	}
	for _, want := range []string{"Figure 7", "SWIFT-R", "AR20", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 output missing %q", want)
		}
	}
}

func TestFig8bQuick(t *testing.T) {
	c := quickCtx()
	out, err := c.Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lud") {
		t.Errorf("Fig8b output incomplete:\n%s", out)
	}
}

func TestAblationQuick(t *testing.T) {
	c := quickCtx()
	out, err := c.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase slicing", "predictor levels", "control-flow checking"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

// TestFrontierSynthetic drives the frontier table from hand-built
// rows: it is a pure aggregation and must average per scheme.
func TestFrontierSynthetic(t *testing.T) {
	c := quickCtx()
	p := []PerfRow{
		{Bench: "a", Scheme: "SWIFT-R", Time: 2.0},
		{Bench: "b", Scheme: "SWIFT-R", Time: 3.0},
		{Bench: "a", Scheme: "AR20", Time: 1.5},
	}
	var r fault.Result
	r.N = 100
	r.Counts[fault.Correct] = 90
	rel := []ReliabilityRow{
		{Bench: "a", Scheme: "SWIFT-R", R: r},
		{Bench: "a", Scheme: "AR20", R: r},
	}
	out := c.Frontier(p, rel)
	if !strings.Contains(out, "SWIFT-R") || !strings.Contains(out, "2.50x") {
		t.Errorf("frontier did not average SWIFT-R time to 2.50x:\n%s", out)
	}
	if !strings.Contains(out, "90.00%") {
		t.Errorf("frontier did not report the 90%% protection rate:\n%s", out)
	}
}
