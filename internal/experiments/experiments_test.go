package experiments

import (
	"strings"
	"testing"
)

// quickCtx returns a context sized for test runs.
func quickCtx() *Context {
	c := New()
	c.Quick = true
	c.TrainSeeds = 2
	c.FaultN = 60
	return c
}

func TestTable1(t *testing.T) {
	c := quickCtx()
	out, err := c.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"conv1d", "blackscholes", "yolo", "lud"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "blkschls") {
		t.Error("blackscholes memo callee missing from Table 1")
	}
}

func TestFig2(t *testing.T) {
	c := quickCtx()
	out, err := c.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "average") {
		t.Errorf("Fig2 output incomplete:\n%s", out)
	}
}

func TestCostRatio(t *testing.T) {
	c := quickCtx()
	out, err := c.CostRatio()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dynamic interpolation", "approximate memoization", "re-computation"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost ratio missing %q:\n%s", want, out)
		}
	}
}

func TestMemoExperiment(t *testing.T) {
	c := quickCtx()
	out, err := c.Memo()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "histogram") || !strings.Contains(out, "uniform") {
		t.Errorf("memo comparison incomplete:\n%s", out)
	}
}

func TestFig8a(t *testing.T) {
	c := quickCtx()
	out, err := c.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DI-only") || !strings.Contains(out, "DI+AM") {
		t.Errorf("Fig8a incomplete:\n%s", out)
	}
}

func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaigns are slow")
	}
	c := quickCtx()
	c.FaultN = 40
	rows, out, err := c.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9*6 { // 9 benchmarks × (UNSAFE, SWIFT-R, 4 ARs)
		t.Errorf("got %d campaign rows, want 54", len(rows))
	}
	if !strings.Contains(out, "Figure 9a") || !strings.Contains(out, "Figure 9b") {
		t.Errorf("Fig9 output incomplete")
	}
}
