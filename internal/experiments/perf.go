package experiments

import (
	"fmt"
	"strings"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
	"rskip/internal/rtm"
	"rskip/internal/stats"
	"rskip/internal/train"
)

// PerfRow is one benchmark × scheme measurement.
type PerfRow struct {
	Bench    string
	Scheme   string
	Time     float64 // normalized execution time (cycles / unprotected)
	Instrs   float64 // normalized dynamic instructions
	IPC      float64 // normalized IPC
	SkipRate float64 // fraction of re-computation skipped (RSkip only)
	DISkip   float64
}

// Fig7 reproduces the four panels of Figure 7: average skip rate,
// normalized execution time, normalized dynamic instructions and
// normalized IPC for SWIFT-R and RSkip at AR20..AR100.
func (c *Context) Fig7() ([]PerfRow, string, error) {
	var rows []PerfRow
	scale := c.PerfScale()
	for _, b := range bench.All() {
		c.logf("fig7: %s", b.Name)
		inst := b.Gen(bench.TestSeed(0), scale)

		base, err := c.Program(b, core.DefaultConfig())
		if err != nil {
			return nil, "", err
		}
		golden := base.Run(core.Unsafe, inst, core.RunOpts{})
		if golden.Err != nil {
			return nil, "", fmt.Errorf("fig7: %s unprotected run: %w", b.Name, golden.Err)
		}
		norm := func(o core.Outcome) (t, i, ipc float64) {
			return float64(o.Result.Cycles) / float64(golden.Result.Cycles),
				float64(o.Result.Instrs) / float64(golden.Result.Instrs),
				o.Result.IPC() / golden.Result.IPC()
		}

		sw := base.Run(core.SWIFTR, inst, core.RunOpts{})
		if sw.Err != nil {
			return nil, "", fmt.Errorf("fig7: %s SWIFT-R run: %w", b.Name, sw.Err)
		}
		t, i, ipc := norm(sw)
		rows = append(rows, PerfRow{Bench: b.Name, Scheme: "SWIFT-R", Time: t, Instrs: i, IPC: ipc})

		for _, ar := range ARs {
			cfg := core.DefaultConfig()
			cfg.AR = ar
			p, err := c.Program(b, cfg)
			if err != nil {
				return nil, "", err
			}
			o := p.Run(core.RSkip, inst, core.RunOpts{})
			if o.Err != nil {
				return nil, "", fmt.Errorf("fig7: %s %s run: %w", b.Name, ARLabel(ar), o.Err)
			}
			t, i, ipc := norm(o)
			rows = append(rows, PerfRow{
				Bench: b.Name, Scheme: ARLabel(ar),
				Time: t, Instrs: i, IPC: ipc,
				SkipRate: o.SkipRate(), DISkip: o.DISkipRate(),
			})
		}
	}
	return rows, renderFig7(rows), nil
}

func renderFig7(rows []PerfRow) string {
	var sb strings.Builder
	schemes := []string{"SWIFT-R", "AR20", "AR50", "AR80", "AR100"}

	panel := func(title string, get func(PerfRow) float64, pct bool, skipSwiftr bool) {
		t := stats.NewTable(title, append([]string{"benchmark"}, schemes...)...)
		byBench := map[string]map[string]float64{}
		var names []string
		for _, r := range rows {
			m := byBench[r.Bench]
			if m == nil {
				m = map[string]float64{}
				byBench[r.Bench] = m
				names = append(names, r.Bench)
			}
			m[r.Scheme] = get(r)
		}
		sums := map[string]float64{}
		for _, n := range names {
			cells := []string{n}
			for _, s := range schemes {
				v, ok := byBench[n][s]
				if !ok || (skipSwiftr && s == "SWIFT-R") {
					cells = append(cells, "-")
					continue
				}
				sums[s] += v
				if pct {
					cells = append(cells, stats.Pct(v))
				} else {
					cells = append(cells, stats.X(v))
				}
			}
			t.Row(cells...)
		}
		avg := []string{"average"}
		for _, s := range schemes {
			if skipSwiftr && s == "SWIFT-R" {
				avg = append(avg, "-")
				continue
			}
			v := sums[s] / float64(len(names))
			if pct {
				avg = append(avg, stats.Pct(v))
			} else {
				avg = append(avg, stats.X(v))
			}
		}
		t.Row(avg...)
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}

	panel("Figure 7a — average skip rate (paper avg: AR20 67.03%, AR50 75.67%, AR80 78.73%, AR100 81.10%)",
		func(r PerfRow) float64 { return r.SkipRate }, true, true)
	// Bars, the way the paper draws the figure.
	sb.WriteString("Figure 7a as bars (# = 2.5% skip), AR20 and AR100:\n")
	for _, r := range rows {
		if r.Scheme == "AR20" || r.Scheme == "AR100" {
			fmt.Fprintf(&sb, "  %-13s %-5s |%s| %5.1f%%\n",
				r.Bench, r.Scheme, stats.Bar(r.SkipRate, 40), 100*r.SkipRate)
		}
	}
	sb.WriteByte('\n')
	panel("Figure 7b — normalized execution time (paper avg: SWIFT-R 2.33x, AR20 1.42x, AR50 1.33x, AR80 1.30x, AR100 1.27x)",
		func(r PerfRow) float64 { return r.Time }, false, false)
	panel("Figure 7c — normalized dynamic instructions (paper avg: SWIFT-R 3.48x, AR20 1.71x, AR100 1.49x)",
		func(r PerfRow) float64 { return r.Instrs }, false, false)
	panel("Figure 7d — normalized IPC (paper avg: SWIFT-R 1.47x, RSkip ~1x)",
		func(r PerfRow) float64 { return r.IPC }, false, false)
	return sb.String()
}

// Fig8a reproduces the blackscholes deep dive: DI-only vs DI+AM
// execution time and skip rate across acceptable ranges.
func (c *Context) Fig8a() (string, error) {
	b, err := bench.ByName("blackscholes")
	if err != nil {
		return "", err
	}
	scale := c.PerfScale()
	inst := b.Gen(bench.TestSeed(0), scale)
	base, err := c.Program(b, core.DefaultConfig())
	if err != nil {
		return "", err
	}
	golden := base.Run(core.Unsafe, inst, core.RunOpts{})
	if golden.Err != nil {
		return "", golden.Err
	}

	t := stats.NewTable(
		"Figure 8a — blackscholes: DI-only vs DI+AM (paper: DI-only AR20 2.07x/11.47% → AR100 1.50x/67.03%; DI+AM >99% skip at every AR)",
		"config", "norm. time", "skip rate", "DI skip")
	for _, ar := range ARs {
		for _, memoOff := range []bool{true, false} {
			cfg := core.DefaultConfig()
			cfg.AR = ar
			cfg.DisableMemo = memoOff
			p, err := c.Program(b, cfg)
			if err != nil {
				return "", err
			}
			o := p.Run(core.RSkip, inst, core.RunOpts{})
			if o.Err != nil {
				return "", o.Err
			}
			label := ARLabel(ar) + " DI+AM"
			if memoOff {
				label = ARLabel(ar) + " DI-only"
			}
			t.Row(label,
				stats.X(float64(o.Result.Cycles)/float64(golden.Result.Cycles)),
				stats.Pct(o.SkipRate()), stats.Pct(o.DISkipRate()))
		}
	}
	return t.String(), nil
}

// Fig8b reproduces the lud input-diversity study: 20 distinct test
// inputs at AR20, reporting per-input normalized time and skip rate
// against the SWIFT-R baseline.
func (c *Context) Fig8b() (string, error) {
	b, err := bench.ByName("lud")
	if err != nil {
		return "", err
	}
	p, err := c.Program(b, core.DefaultConfig())
	if err != nil {
		return "", err
	}
	scale := c.PerfScale()
	t := stats.NewTable(
		"Figure 8b — lud across 20 test inputs at AR20 (paper: typical ~1.15x/90%, worst 1.59x/55%, best 1.07x/97%; SWIFT-R for scale)",
		"input", "SWIFT-R time", "RSkip time", "skip rate")
	var times, skips []float64
	for i := 0; i < 20; i++ {
		inst := b.Gen(bench.TestSeed(i), scale)
		golden := p.Run(core.Unsafe, inst, core.RunOpts{})
		if golden.Err != nil {
			return "", golden.Err
		}
		sw := p.Run(core.SWIFTR, inst, core.RunOpts{})
		o := p.Run(core.RSkip, inst, core.RunOpts{})
		if sw.Err != nil || o.Err != nil {
			return "", fmt.Errorf("fig8b input %d: %v %v", i, sw.Err, o.Err)
		}
		rt := float64(o.Result.Cycles) / float64(golden.Result.Cycles)
		st := float64(sw.Result.Cycles) / float64(golden.Result.Cycles)
		times = append(times, rt)
		skips = append(skips, o.SkipRate())
		t.Row(fmt.Sprintf("%d", i+1), stats.X(st), stats.X(rt), stats.Pct(o.SkipRate()))
	}
	mnT, mxT := stats.MinMax(times)
	mnS, mxS := stats.MinMax(skips)
	t.Row("median", "", stats.X(stats.Median(times)), stats.Pct(stats.Median(skips)))
	t.Row("best/worst", "",
		fmt.Sprintf("%s / %s", stats.X(mnT), stats.X(mxT)),
		fmt.Sprintf("%s / %s", stats.Pct(mxS), stats.Pct(mnS)))
	return t.String(), nil
}

// CostRatio reproduces the §2 measurement: the relative per-element
// cost of dynamic interpolation, approximate memoization and
// re-computation in blackscholes (paper: 1 : 1.84 : 4.18).
func (c *Context) CostRatio() (string, error) {
	b, err := bench.ByName("blackscholes")
	if err != nil {
		return "", err
	}
	p, err := c.Program(b, core.DefaultConfig())
	if err != nil {
		return "", err
	}
	// Re-computation cost: run the outlined recompute slice once per
	// element by forcing conventional-protection emulation and reading
	// the per-element region instruction delta.
	cfgCP := core.DefaultConfig()
	cfgCP.ForceCP = true
	pcp, err := c.Program(b, cfgCP)
	if err != nil {
		return "", err
	}
	scale := c.PerfScale()
	inst := b.Gen(bench.TestSeed(0), scale)
	ocp := pcp.Run(core.RSkip, inst, core.RunOpts{})
	if ocp.Err != nil {
		return "", ocp.Err
	}
	elems := 0
	for _, st := range ocp.Stats {
		elems += st.Observed
	}
	if elems == 0 {
		return "", fmt.Errorf("costratio: no elements observed")
	}
	// The CP run executes the pricing callee twice per element: once in
	// the loop's value slice and once in the recompute slice. Subtract
	// the collector run's internal instructions (the in-loop calls
	// alone) to isolate the re-computation cost.
	_, colCounters, err := train.Collect(pcp.Module(core.RSkip), pcp.Kernel, inst.Setup)
	if err != nil {
		return "", err
	}
	recompute := float64(ocp.Result.Counter.Internal-colCounters.Internal) / float64(elems)

	nInputs := 0
	for _, li := range p.Module(core.RSkip).Loops {
		if li.MemoFn >= 0 {
			nInputs = len(p.Module(core.RSkip).Funcs[li.MemoFn].Params)
		}
	}
	di, am := rtm.PredictorCosts(nInputs)
	diC := float64(di.Instrs())
	amC := float64(am.Instrs())

	t := stats.NewTable(
		"§2 cost ratio — blackscholes per-element cost (paper: DI 1 : AM 1.84 : re-computation 4.18)",
		"mechanism", "instructions/element", "ratio vs DI")
	t.Row("dynamic interpolation", fmt.Sprintf("%.1f", diC), "1.00")
	t.Row("approximate memoization", fmt.Sprintf("%.1f", amC), fmt.Sprintf("%.2f", amC/diC))
	t.Row("re-computation", fmt.Sprintf("%.1f", recompute), fmt.Sprintf("%.2f", recompute/diC))
	return t.String(), nil
}

// ensure machine import is referenced (Cost type flows through rtm).
var _ machine.Cost
