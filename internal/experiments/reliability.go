package experiments

import (
	"fmt"
	"strings"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/stats"
)

// ReliabilityRow is one benchmark × scheme fault-injection summary.
type ReliabilityRow struct {
	Bench  string
	Scheme string
	R      fault.Result
}

// Fig9 reproduces the fault-injection study: outcome distribution per
// benchmark and scheme (Fig. 9a) and false negatives per acceptable
// range (Fig. 9b).
func (c *Context) Fig9() ([]ReliabilityRow, string, error) {
	var rows []ReliabilityRow
	n := c.faultN()
	for _, b := range bench.All() {
		inst := b.Gen(bench.TestSeed(0), bench.ScaleFI)
		base, err := c.Program(b, core.DefaultConfig())
		if err != nil {
			return nil, "", err
		}
		for _, s := range []core.Scheme{core.Unsafe, core.SWIFTR} {
			c.logf("fig9: %s %v", b.Name, s)
			r, err := fault.Campaign(c.Ctx(), base, s, inst, fault.Config{N: n, Seed: c.Seed})
			if err != nil {
				return nil, "", fmt.Errorf("fig9: %s %v: %w", b.Name, s, err)
			}
			rows = append(rows, ReliabilityRow{Bench: b.Name, Scheme: s.String(), R: r})
		}
		for _, ar := range ARs {
			c.logf("fig9: %s %s", b.Name, ARLabel(ar))
			cfg := core.DefaultConfig()
			cfg.AR = ar
			p, err := c.Program(b, cfg)
			if err != nil {
				return nil, "", err
			}
			r, err := fault.Campaign(c.Ctx(), p, core.RSkip, inst, fault.Config{N: n, Seed: c.Seed})
			if err != nil {
				return nil, "", fmt.Errorf("fig9: %s %s: %w", b.Name, ARLabel(ar), err)
			}
			rows = append(rows, ReliabilityRow{Bench: b.Name, Scheme: ARLabel(ar), R: r})
		}
	}
	return rows, renderFig9(rows), nil
}

func renderFig9(rows []ReliabilityRow) string {
	var sb strings.Builder
	t := stats.NewTable(
		"Figure 9a — fault injection outcomes (%) with 95% Wilson CIs on the protection rate (paper avg: UNSAFE 76.68 Correct/20.72 SDC/2.13 Seg; SWIFT-R 97.24/1.08/1.40; AR20 95.67/2.23/1.63; AR50 94.51/3.37; AR80 93.42/4.30; AR100 92.52/5.29; CoreDump+Hang <0.3 everywhere)",
		"benchmark", "scheme", "Correct", "95% CI", "SDC", "Segfault", "Core dump", "Hang")
	for _, r := range rows {
		lo, hi := r.R.ProtectionCI()
		t.Row(r.Bench, r.Scheme,
			fmt.Sprintf("%.1f", r.R.ProtectionRate()),
			fmt.Sprintf("[%.1f, %.1f]", lo, hi),
			fmt.Sprintf("%.1f", r.R.Rate(fault.SDC)),
			fmt.Sprintf("%.1f", r.R.Rate(fault.Segfault)),
			fmt.Sprintf("%.1f", r.R.Rate(fault.CoreDump)),
			fmt.Sprintf("%.1f", r.R.Rate(fault.Hang)))
	}
	appendAverages(t, rows)
	sb.WriteString(t.String())
	sb.WriteByte('\n')

	fn := stats.NewTable(
		"Figure 9b — false negatives (%) (paper avg: AR20 1.80, AR50 3.12, AR80 3.74, AR100 5.04; mostly SDCs; largely benign in YOLOv2)",
		"benchmark", "AR20", "AR50", "AR80", "AR100")
	byBench := map[string]map[string]float64{}
	var names []string
	for _, r := range rows {
		if !strings.HasPrefix(r.Scheme, "AR") {
			continue
		}
		m := byBench[r.Bench]
		if m == nil {
			m = map[string]float64{}
			byBench[r.Bench] = m
			names = append(names, r.Bench)
		}
		m[r.Scheme] = r.R.FalseNegRate()
	}
	sums := map[string]float64{}
	for _, nme := range names {
		cells := []string{nme}
		for _, s := range []string{"AR20", "AR50", "AR80", "AR100"} {
			v := byBench[nme][s]
			sums[s] += v
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		fn.Row(cells...)
	}
	avg := []string{"average"}
	for _, s := range []string{"AR20", "AR50", "AR80", "AR100"} {
		avg = append(avg, fmt.Sprintf("%.2f", sums[s]/float64(len(names))))
	}
	fn.Row(avg...)
	sb.WriteString(fn.String())
	return sb.String()
}

func appendAverages(t *stats.Table, rows []ReliabilityRow) {
	type agg struct {
		prot, sdc, seg, core, hang float64
		n                          int
	}
	byScheme := map[string]*agg{}
	var order []string
	for _, r := range rows {
		a := byScheme[r.Scheme]
		if a == nil {
			a = &agg{}
			byScheme[r.Scheme] = a
			order = append(order, r.Scheme)
		}
		a.prot += r.R.ProtectionRate()
		a.sdc += r.R.Rate(fault.SDC)
		a.seg += r.R.Rate(fault.Segfault)
		a.core += r.R.Rate(fault.CoreDump)
		a.hang += r.R.Rate(fault.Hang)
		a.n++
	}
	for _, s := range order {
		a := byScheme[s]
		f := func(v float64) string { return fmt.Sprintf("%.2f", v/float64(a.n)) }
		// Per-benchmark averages are not binomial counts; no CI cell.
		t.Row("average", s, f(a.prot), "", f(a.sdc), f(a.seg), f(a.core), f(a.hang))
	}
}

// Frontier reproduces §7.3: the protection-rate vs slowdown trade-off
// per acceptable range, anchored by SWIFT-R.
func (c *Context) Frontier(perf []PerfRow, rel []ReliabilityRow) string {
	timeBy := map[string][]float64{}
	for _, r := range perf {
		timeBy[r.Scheme] = append(timeBy[r.Scheme], r.Time)
	}
	protBy := map[string][]float64{}
	for _, r := range rel {
		protBy[r.Scheme] = append(protBy[r.Scheme], r.R.ProtectionRate())
	}
	t := stats.NewTable(
		"§7.3 — rationality of the acceptable range (paper: SWIFT-R 97.24%/2.33x; AR20 95.67%/1.42x; AR50 94.51%/1.33x; AR80 93.42%/1.30x; AR100 92.52%/1.27x)",
		"scheme", "protection rate", "slowdown")
	for _, s := range []string{"SWIFT-R", "AR20", "AR50", "AR80", "AR100"} {
		prot := stats.Mean(protBy[s])
		slow := stats.Mean(timeBy[s])
		t.Row(s, fmt.Sprintf("%.2f%%", prot), stats.X(slow))
	}
	return t.String()
}
