package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
	"rskip/internal/stats"
)

// fig6Src is a single long loop whose output regime changes mid-stream
// — the scenario Figure 6 sketches for the run-time management system.
const fig6Src = `
void kernel(float a[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) { s += a[i + j]; }
		out[i] = s;
	}
}
`

// Fig6 illustrates the run-time management cycle: a loop whose input
// switches from a long smooth trend to a jagged regime and back; the
// manager observes context signatures each window and swaps the tuning
// parameter from the trained QoS model.
func (c *Context) Fig6() (string, error) {
	gen := func(seed int64, _ bench.Scale) bench.Instance {
		rng := rand.New(rand.NewSource(seed))
		n := 1536
		vals := make([]float64, n+4)
		v := 200.0
		for i := range vals {
			third := len(vals) / 3
			switch {
			case i < third || i >= 2*third:
				// Long trend with periodic small dips: the slope-change
				// ratio at a dip is ~1.1, so TP=1 cuts constantly while
				// TP=2 rides the whole trend (Figure 6's "escalate TP in
				// a long trend to ignore small outliers").
				if i%3 == 2 {
					v -= 0.05
				} else {
					v += 0.5 + 0.02*rng.Float64()
				}
			default:
				// Deep sawtooth around a low base: TP=1 cuts at every
				// peak and each monotone run validates; TP=2 drags
				// phases across the teeth and the chord misses them
				// ("the parameter should be decreased in
				// widely-fluctuating short trends").
				if i == third {
					v = 40
				}
				if (i/8)%2 == 0 {
					v += 6
				} else {
					v -= 6
				}
				if i == 2*third-1 {
					v = 200
				}
			}
			vals[i] = v
		}
		return bench.Instance{
			Elements: n,
			Setup: func(mem *machine.Memory) []uint64 {
				a := mem.Alloc(int64(n + 4))
				mem.CopyFloats(a, vals)
				out := mem.Alloc(int64(n))
				return []uint64{uint64(a), uint64(out), uint64(int64(n))}
			},
			Output: func(mem *machine.Memory) []uint64 {
				return nil
			},
		}
	}
	b := bench.Benchmark{
		Name: "fig6", Kernel: "kernel", Source: fig6Src,
		Domain: "illustration", Description: "regime-switching input",
		Pattern: "A reduction loop", Location: "Top level",
		Gen: gen,
	}
	p, err := core.BuildContext(c.Ctx(), b, core.DefaultConfig())
	if err != nil {
		return "", err
	}
	if len(p.Candidates) == 0 {
		return "", fmt.Errorf("fig6: no candidate detected")
	}
	if err := p.Train([]int64{1, 2, 3, 4, 5, 6}, bench.ScalePerf); err != nil {
		return "", err
	}
	o := p.Run(core.RSkip, b.Gen(99, bench.ScalePerf), core.RunOpts{})
	if o.Err != nil {
		return "", o.Err
	}

	var sb strings.Builder
	sb.WriteString("Figure 6 — run-time management on a regime-switching input\n")
	sb.WriteString("(the input is smooth, then jagged, then smooth again; each row is one observe/adjust window)\n\n")
	t := stats.NewTable("", "window", "signature", "chosen TP", "")
	for _, st := range o.Stats {
		for i := range st.TPTrace {
			if i%4 != 0 {
				continue // sample every 4th window for readability
			}
			t.Row(fmt.Sprintf("%d", i+1), st.SigTrace[i],
				fmt.Sprintf("%.2f", st.TPTrace[i]),
				stats.Bar(st.TPTrace[i]/2.0, 20))
		}
		sb.WriteString(t.String())
		fmt.Fprintf(&sb, "\nskip rate %.1f%% with %d adjustments\n",
			100*st.SkipRate(), st.Adjusts)
	}
	sb.WriteString("\ntrained QoS model (signature -> TP):\n")
	for _, q := range p.Trained.QoS {
		fmt.Fprintf(&sb, "  default -> %.2f\n", q.Default)
		var sigs []string
		for sig := range q.BySig {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			fmt.Fprintf(&sb, "  %s -> %.2f\n", sig, q.BySig[sig])
		}
	}
	return sb.String(), nil
}
