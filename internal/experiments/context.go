// Package experiments regenerates every table and figure of the
// paper's evaluation (§7): benchmark characteristics (Table 1),
// predictability coverage (Fig. 2), the performance study (Fig. 7),
// the blackscholes and lud deep dives (Fig. 8), the fault-injection
// reliability study (Fig. 9), and the supporting measurements (the §2
// cost ratio, the §4.2 quantization comparison, the §7.3
// protection/performance frontier) plus ablations of RSkip's design
// choices. The cmd/rskipbench tool and bench_test.go are thin wrappers
// over this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/obs"
)

// Context caches built and trained programs across experiments.
type Context struct {
	// Quick shrinks inputs and injection counts for smoke runs.
	Quick bool
	// TrainSeeds is the number of training inputs per benchmark.
	TrainSeeds int
	// FaultN is the number of injections per campaign (Fig. 9).
	FaultN int
	// Seed drives fault sampling.
	Seed int64
	// Out receives progress notes (nil discards them).
	Out io.Writer
	// Obs, when non-nil, traces builds/training/campaigns and collects
	// pipeline metrics across every experiment (rskipbench's
	// -trace/-metrics/-pprof flags).
	Obs *obs.Obs

	mu    sync.Mutex
	cache map[string]*core.Program
}

// Ctx returns a background context carrying the experiment-suite
// observability handle, for campaign and build calls.
func (c *Context) Ctx() context.Context {
	return obs.Into(context.Background(), c.Obs)
}

// New returns a context with the paper's defaults.
func New() *Context {
	return &Context{TrainSeeds: 3, FaultN: 1000, Seed: 20200222}
}

// logf writes a progress note.
func (c *Context) logf(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// PerfScale returns the input scale for performance experiments.
func (c *Context) PerfScale() bench.Scale {
	if c.Quick {
		return bench.ScaleFI
	}
	return bench.ScalePerf
}

// faultN returns the injection count per campaign.
func (c *Context) faultN() int {
	n := c.FaultN
	if c.Quick && n > 200 {
		n = 200
	}
	if n == 0 {
		n = 1000
	}
	return n
}

// Program builds (or retrieves) the benchmark compiled and trained
// under the configuration. The cache key covers every field that
// changes the build or the training result.
func (c *Context) Program(b bench.Benchmark, cfg core.Config) (*core.Program, error) {
	key := fmt.Sprintf("%s|%s|q=%v", b.Name, cfg.Key(), c.Quick)
	c.mu.Lock()
	if c.cache == nil {
		c.cache = map[string]*core.Program{}
	}
	if p, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	p, err := core.BuildContext(c.Ctx(), b, cfg)
	if err != nil {
		return nil, err
	}
	seeds := make([]int64, c.TrainSeeds)
	for i := range seeds {
		seeds[i] = bench.TrainSeed(i)
	}
	trainScale := c.PerfScale()
	if err := p.Train(seeds, trainScale); err != nil {
		return nil, fmt.Errorf("training %s: %w", b.Name, err)
	}
	c.mu.Lock()
	c.cache[key] = p
	c.mu.Unlock()
	return p, nil
}

// ARs are the acceptable ranges the paper evaluates.
var ARs = []float64{0.2, 0.5, 0.8, 1.0}

// ARLabel formats an acceptable range the paper's way.
func ARLabel(ar float64) string { return fmt.Sprintf("AR%.0f", ar*100) }
