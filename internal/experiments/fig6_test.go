package experiments

import (
	"strings"
	"testing"
)

func TestFig6(t *testing.T) {
	c := quickCtx()
	out, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"signature", "chosen TP", "trained QoS model"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q:\n%s", want, out)
		}
	}
	// The trajectory must contain at least two distinct tuning
	// parameters — the whole point of the QoS adaptation.
	tps := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		// Trajectory rows: window, signature, TP, bar.
		if len(fields) == 4 && strings.Contains(fields[3], "#") {
			tps[fields[2]] = true
		}
	}
	if len(tps) < 2 {
		t.Errorf("Fig6 trajectory shows no TP adaptation (%v):\n%s", tps, out)
	}
}
