package experiments

import (
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
)

func TestProgramCaching(t *testing.T) {
	c := quickCtx()
	b, err := bench.ByName("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c.Program(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Program(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical configs should hit the cache")
	}
	cfg := core.DefaultConfig()
	cfg.EnableCFC = true
	p3, err := c.Program(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("EnableCFC must produce a distinct cached program")
	}
	cfg2 := core.DefaultConfig()
	cfg2.AR = 0.8
	p4, err := c.Program(b, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Error("AR must produce a distinct cached program")
	}
}

func TestARLabels(t *testing.T) {
	if ARLabel(0.2) != "AR20" || ARLabel(1.0) != "AR100" {
		t.Errorf("labels: %s %s", ARLabel(0.2), ARLabel(1.0))
	}
	if len(ARs) != 4 {
		t.Errorf("the paper evaluates 4 acceptable ranges, have %d", len(ARs))
	}
}

func TestQuickScaling(t *testing.T) {
	c := New()
	if c.PerfScale() != bench.ScalePerf {
		t.Error("default context should use perf scale")
	}
	if c.faultN() != 1000 {
		t.Errorf("default fault count = %d", c.faultN())
	}
	c.Quick = true
	if c.PerfScale() != bench.ScaleFI {
		t.Error("quick context should use FI scale")
	}
	if c.faultN() != 200 {
		t.Errorf("quick fault count = %d", c.faultN())
	}
}
