package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/ir"
	"rskip/internal/predict"
	"rskip/internal/stats"
	"rskip/internal/train"
)

// Table1 reproduces the benchmark-characteristics table from the
// compiler's own candidate analysis.
func (c *Context) Table1() (string, error) {
	t := stats.NewTable("Table 1 — selected benchmarks (as detected by the compiler)",
		"benchmark", "domain", "prediction target", "detected loops", "candidates", "memo")
	for _, b := range bench.All() {
		p, err := c.Program(b, core.DefaultConfig())
		if err != nil {
			return "", err
		}
		memo := "-"
		for _, li := range p.Module(core.RSkip).Loops {
			if li.MemoFn >= 0 {
				memo = p.Module(core.RSkip).Funcs[li.MemoFn].Name
			}
		}
		t.Row(b.Name, b.Domain, b.Pattern, b.Location,
			fmt.Sprintf("%d", len(p.Candidates)), memo)
	}
	return t.String(), nil
}

// Fig2 reproduces the motivation study: the proportion of dynamic
// instructions whose computation outputs can be estimated by a trend
// or by the top-10 most frequent values.
func (c *Context) Fig2() (string, error) {
	t := stats.NewTable(
		"Figure 2 — coverage of predictable computations (% of dynamic instructions; paper: both methods suggest >33% on average)",
		"benchmark", "trend", "top-10", "value-slice share", "trend elems", "top-10 elems")
	scale := c.PerfScale()
	var trends, tops []float64
	for _, b := range bench.All() {
		p, err := c.Program(b, core.DefaultConfig())
		if err != nil {
			return "", err
		}
		inst := b.Gen(bench.TestSeed(0), scale)
		series, counters, err := train.Collect(p.Module(core.RSkip), p.Kernel, inst.Setup)
		if err != nil {
			return "", err
		}
		// The value slice's share of the whole program's dynamic
		// instructions (tagged value instructions plus unprotected
		// callee execution). The collector run uses the RSkip module,
		// whose value slices are single copies, so the counts equal the
		// unprotected program's.
		valueInstrs := counters.ByTag[ir.TagValue] + counters.Internal
		valueShare := float64(valueInstrs) / float64(counters.Dyn)

		totalElems, trendElems, topElems := 0, 0, 0
		for _, invocations := range series {
			for _, pts := range invocations {
				totalElems += len(pts)
				trendElems += trendPredictable(pts, 0.3)
				topElems += topKPredictable(pts, 10, 0.05)
			}
		}
		if totalElems == 0 {
			continue
		}
		trendCov := valueShare * float64(trendElems) / float64(totalElems)
		topCov := valueShare * float64(topElems) / float64(totalElems)
		trends = append(trends, trendCov)
		tops = append(tops, topCov)
		t.Row(b.Name, stats.Pct(trendCov), stats.Pct(topCov), stats.Pct(valueShare),
			stats.Pct(float64(trendElems)/float64(totalElems)),
			stats.Pct(float64(topElems)/float64(totalElems)))
	}
	t.Row("average", stats.Pct(stats.Mean(trends)), stats.Pct(stats.Mean(tops)), "", "", "")
	return t.String(), nil
}

// trendPredictable counts elements whose value stays within the
// relative threshold of the previous element — the paper's "less than
// a certain amount of changes in consecutive iterations".
func trendPredictable(pts []predict.Point, threshold float64) int {
	n := 0
	for i := 1; i < len(pts); i++ {
		if predict.RelDiff(pts[i].V, pts[i-1].V) <= threshold {
			n++
		}
	}
	return n
}

// topKPredictable counts elements whose value lies within the relative
// tolerance of one of the k most frequent (coarsely quantized) values.
func topKPredictable(pts []predict.Point, k int, tol float64) int {
	quant := func(v float64) float64 {
		if v == 0 {
			return 0
		}
		mag := math.Pow(10, math.Floor(math.Log10(math.Abs(v)))-2)
		return math.Round(v/mag) * mag
	}
	freq := map[float64]int{}
	for _, p := range pts {
		freq[quant(p.V)]++
	}
	type kv struct {
		v float64
		n int
	}
	var all []kv
	for v, n := range freq {
		all = append(all, kv{v, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	if len(all) > k {
		all = all[:k]
	}
	count := 0
	for _, p := range pts {
		for _, c := range all {
			if predict.RelDiff(p.V, c.v) <= tol {
				count++
				break
			}
		}
	}
	return count
}

// Memo reproduces the §4.2 quantization comparison on blackscholes:
// histogram-based quantization (this work) vs uniform min/max
// quantization (prior work), reporting validation accuracy and the
// number of encoded inputs at the same 15-bit address width.
func (c *Context) Memo() (string, error) {
	b, err := bench.ByName("blackscholes")
	if err != nil {
		return "", err
	}
	t := stats.NewTable(
		"§4.2 — lookup-table quantization on blackscholes (paper: uniform 96.5% acc / 3 of 6 inputs encoded; histogram >99% / 6 of 6 at the same 15-bit address)",
		"quantization", "validation accuracy", "encoded inputs", "bits per input")
	for _, uniform := range []bool{true, false} {
		cfg := core.DefaultConfig()
		cfg.MemoUniform = uniform
		p, err := c.Program(b, cfg)
		if err != nil {
			return "", err
		}
		label := "histogram (this work)"
		if uniform {
			label = "uniform (prior work)"
		}
		acc := 0.0
		bits := "-"
		encoded := 0
		deployed := ""
		for id, a := range p.Trained.MemoAccuracy {
			acc = a
			if tab := p.Trained.MemoBuilt[id]; tab != nil {
				bits = fmt.Sprint(tab.Bits)
				encoded = tab.EncodedInputs()
			}
			if p.Trained.Memo[id] == nil {
				deployed = " (below deployment gate)"
			}
		}
		t.Row(label, stats.Pct(acc)+deployed, fmt.Sprintf("%d", encoded), bits)
	}
	return t.String(), nil
}

// Ablation measures the design choices DESIGN.md calls out: dynamic vs
// fixed-stride phase slicing, signature-driven TP adaptation vs a
// fixed TP, and the two-level predictor split on blackscholes.
func (c *Context) Ablation() (string, error) {
	var sb strings.Builder
	scale := c.PerfScale()

	// (1) Redundancy-guided dynamic slicing vs fixed strides, per
	// benchmark: coarse fixed strides do fine on long smooth series
	// (few endpoints) but collapse on short or volatile ones, which is
	// what the run-time-guided slicing exists for.
	t1 := stats.NewTable("Ablation — phase slicing skip rate (AR20)",
		"benchmark", "dynamic (trained TP)", "fixed stride 8", "fixed stride 32")
	type variant struct {
		label string
		mut   func(*core.Config)
	}
	variants := []variant{
		{"dynamic (trained TP)", func(*core.Config) {}},
		{"fixed stride 8", func(cfg *core.Config) { cfg.FixedStride = 8 }},
		{"fixed stride 32", func(cfg *core.Config) { cfg.FixedStride = 32 }},
	}
	skipsBy := map[string][]string{}
	var names []string
	sums := make([]float64, len(variants))
	for vi, v := range variants {
		for _, b := range bench.All() {
			cfg := core.DefaultConfig()
			if b.MemoEligible {
				// Memoization masks the slicing policy; compare DI alone.
				cfg.DisableMemo = true
			}
			v.mut(&cfg)
			p, err := c.Program(b, cfg)
			if err != nil {
				return "", err
			}
			inst := b.Gen(bench.TestSeed(0), scale)
			o := p.Run(core.RSkip, inst, core.RunOpts{})
			if o.Err != nil {
				return "", fmt.Errorf("ablation: %s: %v", b.Name, o.Err)
			}
			if vi == 0 {
				names = append(names, b.Name)
			}
			skipsBy[b.Name] = append(skipsBy[b.Name], stats.Pct(o.SkipRate()))
			sums[vi] += o.SkipRate()
		}
	}
	for _, n := range names {
		t1.Row(append([]string{n}, skipsBy[n]...)...)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, stats.Pct(s/float64(len(names))))
	}
	t1.Row(avg...)
	sb.WriteString(t1.String())
	sb.WriteByte('\n')

	// (2) Two-level prediction on blackscholes.
	b, err := bench.ByName("blackscholes")
	if err != nil {
		return "", err
	}
	t2 := stats.NewTable("Ablation — predictor levels on blackscholes (AR20)",
		"configuration", "skip rate", "norm. time")
	levels := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"DI + AM (deployed)", func(*core.Config) {}},
		{"DI only", func(cfg *core.Config) { cfg.DisableMemo = true }},
		{"AM only", func(cfg *core.Config) { cfg.DisableDI = true }},
		{"emulated CP (no prediction)", func(cfg *core.Config) { cfg.ForceCP = true }},
	}
	inst := b.Gen(bench.TestSeed(0), scale)
	for _, v := range levels {
		cfg := core.DefaultConfig()
		v.mut(&cfg)
		p, err := c.Program(b, cfg)
		if err != nil {
			return "", err
		}
		golden := p.Run(core.Unsafe, inst, core.RunOpts{})
		o := p.Run(core.RSkip, inst, core.RunOpts{})
		if golden.Err != nil || o.Err != nil {
			return "", fmt.Errorf("ablation: blackscholes: %v %v", golden.Err, o.Err)
		}
		t2.Row(v.label, stats.Pct(o.SkipRate()),
			stats.X(float64(o.Result.Cycles)/float64(golden.Result.Cycles)))
	}
	sb.WriteString(t2.String())
	sb.WriteByte('\n')

	// (3) Control-flow checking on top of the protection schemes: the
	// companion technique ([16]-style signatures) converts illegal
	// control transfers into fail-stop detections.
	bcf, err := bench.ByName("conv2d")
	if err != nil {
		return "", err
	}
	t3 := stats.NewTable("Ablation — control-flow checking (conv2d, fault injection)",
		"scheme", "protected", "SDC", "Hang", "instr overhead")
	instCF := bcf.Gen(bench.TestSeed(0), bench.ScaleFI)
	n := c.faultN() / 2
	if n < 50 {
		n = 50
	}
	for _, enable := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.EnableCFC = enable
		p, err := c.Program(bcf, cfg)
		if err != nil {
			return "", err
		}
		golden := p.Run(core.Unsafe, instCF, core.RunOpts{})
		o := p.Run(core.RSkip, instCF, core.RunOpts{})
		if golden.Err != nil || o.Err != nil {
			return "", fmt.Errorf("cfc ablation: %v %v", golden.Err, o.Err)
		}
		r, err := fault.Campaign(c.Ctx(), p, core.RSkip, instCF, fault.Config{N: n, Seed: c.Seed})
		if err != nil {
			return "", err
		}
		label := "RSkip AR20"
		if enable {
			label = "RSkip AR20 + CFC"
		}
		t3.Row(label,
			fmt.Sprintf("%.1f%%", r.ProtectionRate()),
			fmt.Sprintf("%.1f%%", r.Rate(fault.SDC)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Hang)),
			stats.X(float64(o.Result.Instrs)/float64(golden.Result.Instrs)))
	}
	sb.WriteString(t3.String())
	return sb.String(), nil
}
