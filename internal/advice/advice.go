// Package advice is the daemon's advisory prediction layer: it
// forecasts what a fault-injection campaign will find (protection
// rate) and cost (wall time) from static features and the growing
// corpus of past campaign outcomes — before any CPU is burned on the
// campaign itself.
//
// The package lives under one contract, borrowed from the PIN-205 /
// PB-S5 production playbook: predictions ADVISE, they never
// INFLUENCE. Every forecast is labeled advisory at every boundary
// (the Forecast struct carries an always-true Advisory field onto the
// wire), predictions are stored in their own file separate from
// results, and nothing in the engine, scheduler, or fabric imports
// this package — the dependency arrow points one way, so the engine
// provably cannot observe a prediction. The inertness property test
// (inert_test.go) pins the stronger runtime claim: a campaign run
// with the advisor active is bit-identical to one run without it,
// across every execution backend.
//
// Structure:
//
//   - Record / Corpus: one compact JSONL record per finished campaign
//     or region — static features (cost, instruction mix, scheme
//     pipeline signature, fault mix/widths, AR) and labels
//     (protection rate + Wilson CI, runs, wall time).
//   - Estimate: a zero-dependency nearest-neighbor estimator with
//     distance-weighted blending, falling back to per-scheme priors
//     when the corpus is thin.
//   - Log: the scoring loop — every forecast handed out is recorded,
//     and when the real outcome arrives it is written next to the
//     prediction, so calibration (MAE, CI coverage) is measured
//     against reality, never asserted.
//   - Advisor: the composition the daemon and CLIs hold.
package advice

import (
	"fmt"

	"rskip/internal/fault"
	"rskip/internal/machine"
)

// NumFaultKinds is the arity of the fault-mix feature vector,
// mirroring fault.Mix's weight fields in declaration order.
const NumFaultKinds = 6

// Features are the static, pre-campaign properties a forecast is
// conditioned on. Everything here is known before a single fault is
// injected; the profiled fields additionally require one fault-free
// traced run (cheap next to a campaign) and are zero, with Profiled
// false, when no profile was taken.
type Features struct {
	// Bench and Scheme identify the workload; Scheme uses the
	// canonical core.Scheme.String() form.
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// PipeSig is the scheme's pipeline content signature and ConfigKey
	// the build config identity — together they say "same protection
	// machinery" more precisely than the scheme name.
	PipeSig   string `json:"pipe_sig,omitempty"`
	ConfigKey string `json:"config_key,omitempty"`
	// AR is the acceptable range (the paper's protection/overhead dial).
	AR float64 `json:"ar"`
	// FaultMix is the normalized sampling mix over fault kinds, in
	// fault.Mix declaration order (RegFile, Result, Source, Opcode,
	// Skip, MultiBit).
	FaultMix [NumFaultKinds]float64 `json:"fault_mix"`
	// SkipWidth/BitWidth parameterize the skip and multibit kinds.
	SkipWidth int `json:"skip_width,omitempty"`
	BitWidth  int `json:"bit_width,omitempty"`
	// Requested is the campaign's injection count.
	Requested int `json:"requested"`
	// Profiled reports the cost fields below were filled from a traced
	// fault-free run.
	Profiled bool `json:"profiled,omitempty"`
	// Cost is the in-region dynamic instruction count (the fault
	// population); Instrs the whole fault-free run's count.
	Cost   uint64 `json:"cost,omitempty"`
	Instrs uint64 `json:"instrs,omitempty"`
	// ClassMix is the in-region instruction stream's share per
	// machine.OpClass (ALU, float, mem, branch, call, check, runtime).
	ClassMix [machine.NumOpClasses]float64 `json:"class_mix"`
}

// Labels are the realized campaign outcome a record carries next to
// its features: what the estimator learns from.
type Labels struct {
	// Protection is the realized protection rate in percent, with its
	// 95% Wilson interval.
	Protection float64 `json:"protection"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	// Runs is the completed injection count behind the label.
	Runs int `json:"runs"`
	// WallSeconds is the campaign's wall time, measured outside the
	// engine (results stay timing-free); 0 = not measured.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// ResultLabels folds a campaign result into corpus labels. Wall time
// is passed in by the caller — the engine's Result deliberately
// carries no timing, so bit-identity across backends is preserved.
func ResultLabels(r fault.Result, wallSeconds float64) Labels {
	lo, hi := r.ProtectionCI()
	return Labels{
		Protection:  r.ProtectionRate(),
		CILo:        lo,
		CIHi:        hi,
		Runs:        r.N,
		WallSeconds: wallSeconds,
	}
}

// Calibration is the scoring loop's accuracy report: how the advisor's
// past forecasts compare to the outcomes that later materialized.
type Calibration struct {
	// Predictions counts forecasts handed out; Scored how many have a
	// realized outcome recorded next to them.
	Predictions int `json:"predictions"`
	Scored      int `json:"scored"`
	// MAE is the mean absolute error of the protection forecast over
	// scored predictions, in percentage points.
	MAE float64 `json:"mae_pts"`
	// CICoverage is the fraction of scored predictions whose realized
	// protection fell inside the forecast interval. The estimator
	// targets at least 0.8 once the corpus is populated.
	CICoverage float64 `json:"ci_coverage"`
}

func (c Calibration) String() string {
	return fmt.Sprintf("predictions=%d scored=%d mae=%.2fpt ci_coverage=%.2f",
		c.Predictions, c.Scored, c.MAE, c.CICoverage)
}
