package advice

import (
	"sync"

	"rskip/internal/machine"
)

// Advisor composes the corpus, the estimator and the prediction log
// into the handle the daemon and CLIs hold. It also keeps a profile
// cache so /v1/advise queries can be answered with profiled features
// (cost, class mix) once any campaign or extraction has profiled the
// same bench × config × scheme — without the advise path ever
// compiling or running anything itself.
//
// Inertness by construction: the advisor only ever reads campaign
// outcomes (Observe) and answers queries (Forecast/Estimate). It
// exposes nothing an engine could consult — and the engine packages
// (fault, result, fabric, core, machine) do not import this one, so
// the compiler enforces the "advise, never influence" contract.
type Advisor struct {
	corpus *Corpus
	log    *Log

	mu       sync.Mutex
	profiles map[string]profileEntry
}

type profileEntry struct {
	cost, instrs uint64
	classMix     [machine.NumOpClasses]float64
}

// New opens an advisor rooted at dir ("" = memory-only: forecasts
// work, nothing persists). A corrupt corpus does not fail
// construction: the valid records are kept, the file healed, and the
// usable advisor is returned alongside a *CorruptCorpusError for the
// caller to log. Only real I/O failures return a nil advisor.
func New(dir string) (*Advisor, error) {
	corpus, corpusErr := OpenCorpus(dir)
	if corpus == nil {
		return nil, corpusErr
	}
	log, err := OpenLog(dir)
	if err != nil {
		return nil, err
	}
	return &Advisor{corpus: corpus, log: log, profiles: map[string]profileEntry{}}, corpusErr
}

func profileKey(f Features) string {
	return f.Bench + "|" + f.ConfigKey + "|" + f.Scheme
}

// Enrich overlays cached profiled features (cost, instruction mix)
// onto an unprofiled query, and remembers profiled ones for future
// queries. It never runs anything.
func (a *Advisor) Enrich(f Features) Features {
	key := profileKey(f)
	a.mu.Lock()
	defer a.mu.Unlock()
	if f.Profiled {
		a.profiles[key] = profileEntry{cost: f.Cost, instrs: f.Instrs, classMix: f.ClassMix}
		return f
	}
	if pe, ok := a.profiles[key]; ok {
		f.Profiled = true
		f.Cost, f.Instrs, f.ClassMix = pe.cost, pe.instrs, pe.classMix
	}
	return f
}

// Estimate answers an advisory query without recording a prediction —
// the read-only path behind /v1/advise.
func (a *Advisor) Estimate(f Features) Forecast {
	return Estimate(a.corpus.Snapshot(), a.Enrich(f))
}

// Forecast answers a query and records it as a scored prediction,
// returning the prediction ID the eventual Observe call references.
// The returned error only reports prediction-log I/O trouble; the
// forecast itself is always valid.
func (a *Advisor) Forecast(f Features) (Forecast, string, error) {
	f = a.Enrich(f)
	fc := Estimate(a.corpus.Snapshot(), f)
	id, err := a.log.Record(f, fc)
	return fc, id, err
}

// Observe feeds one realized campaign outcome back: it scores the
// prediction (when predID is known), appends the features × labels
// record to the corpus, and caches the profile. Pass predID == "" for
// outcomes that had no forecast (per-region records of an incremental
// analysis). scored reports whether a prediction was matched.
func (a *Advisor) Observe(predID string, f Features, lab Labels) (oc Outcome, scored bool, err error) {
	f = a.Enrich(f)
	if predID != "" {
		oc, scored = a.log.Score(predID, lab)
	}
	err = a.corpus.Append(f, lab)
	return oc, scored, err
}

// Calibration reports the scoring loop's accuracy so far.
func (a *Advisor) Calibration() Calibration { return a.log.Calibration() }

// CorpusSize reports the outcome-record count.
func (a *Advisor) CorpusSize() int { return a.corpus.Len() }
