package advice

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCorpus(t *testing.T, dir string, lines []string) string {
	t.Helper()
	path := filepath.Join(dir, corpusFile)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func goodLine(t *testing.T, protection float64) string {
	t.Helper()
	lab := sampleLabels()
	lab.Protection = protection
	rec, err := NewRecord(sampleFeatures(), lab)
	if err != nil {
		t.Fatal(err)
	}
	line, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return string(line)
}

func TestCorpusPersistAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(sampleFeatures(), sampleLabels()); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(sampleFeatures(), sampleLabels()); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened corpus has %d records, want 2", re.Len())
	}
}

// TestCorpusHealsCorruptRecords is the satellite contract: corrupt or
// truncated lines surface as a typed error, the valid records survive,
// and the file is healed so the corruption is reported exactly once.
func TestCorpusHealsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	writeCorpus(t, dir, []string{
		goodLine(t, 90),
		"{\"v\":1,\"features\"", // truncated mid-object
		goodLine(t, 85),
		"not json at all",
		strings.Replace(goodLine(t, 80), `"v":1`, `"v":9`, 1), // wrong version
	})
	c, err := OpenCorpus(dir)
	if c == nil {
		t.Fatalf("corrupt lines must not lose the corpus: %v", err)
	}
	var cce *CorruptCorpusError
	if !errors.As(err, &cce) {
		t.Fatalf("error %T, want *CorruptCorpusError (got %v)", err, err)
	}
	if cce.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", cce.Dropped)
	}
	var cre *CorruptRecordError
	if !errors.As(err, &cre) || cre.Line != 2 {
		t.Errorf("first bad line not surfaced as *CorruptRecordError with Line=2: %v", err)
	}
	if c.Len() != 2 {
		t.Fatalf("surviving records = %d, want 2", c.Len())
	}
	// The heal rewrote the file: a second open is clean.
	healed, err := OpenCorpus(dir)
	if err != nil {
		t.Fatalf("healed corpus still reports corruption: %v", err)
	}
	if healed.Len() != 2 {
		t.Fatalf("healed corpus has %d records, want 2", healed.Len())
	}
}

// TestCorruptCorpusFallsBackToPriors: when every record is corrupt,
// the advisor still answers — from the per-scheme prior table.
func TestCorruptCorpusFallsBackToPriors(t *testing.T) {
	dir := t.TempDir()
	writeCorpus(t, dir, []string{"garbage one", "garbage two"})
	adv, err := New(dir)
	if adv == nil {
		t.Fatalf("advisor lost to corrupt corpus: %v", err)
	}
	var cce *CorruptCorpusError
	if !errors.As(err, &cce) {
		t.Fatalf("error %T, want *CorruptCorpusError", err)
	}
	fc := adv.Estimate(Features{Bench: "conv1d", Scheme: "SWIFT-R", Requested: 100})
	if fc.Source != "priors" {
		t.Errorf("Source = %q, want priors", fc.Source)
	}
	if !fc.Advisory {
		t.Error("forecast not labeled advisory")
	}
	if fc.Confidence != "low" {
		t.Errorf("Confidence = %q, want low", fc.Confidence)
	}
}

func TestPriorsCoverEveryScheme(t *testing.T) {
	for _, scheme := range []string{"UNSAFE", "SWIFT", "SWIFT-R", "RSkip", "SWIFT-R-HARD", "FUTURE-SCHEME"} {
		fc := Estimate(nil, Features{Scheme: scheme})
		if !fc.Advisory || fc.Source != "priors" {
			t.Errorf("%s: advisory=%v source=%q", scheme, fc.Advisory, fc.Source)
		}
		if fc.CILo > fc.Protection || fc.Protection > fc.CIHi {
			t.Errorf("%s: prior point %v outside its own interval [%v, %v]",
				scheme, fc.Protection, fc.CILo, fc.CIHi)
		}
		if fc.WallKnown {
			t.Errorf("%s: priors cannot know wall time", scheme)
		}
	}
}
