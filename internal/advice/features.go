package advice

import (
	"context"
	"fmt"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/machine"
)

// Shape is the campaign configuration slice a forecast is conditioned
// on — the knobs that change what a campaign would find or cost.
type Shape struct {
	// Mix is the fault-kind sampling mix (zero = fault.DefaultMix).
	Mix       fault.Mix
	SkipWidth int
	BitWidth  int
	// Requested is the injection count the campaign would run.
	Requested int
}

// StaticFeatures assembles the features knowable without executing
// anything: identity, pipeline signature, config, fault model. The
// result is unprofiled (Cost/ClassMix zero).
func StaticFeatures(benchName string, s core.Scheme, cfg core.Config, sh Shape) Features {
	mix := sh.Mix
	if mix == (fault.Mix{}) {
		mix = fault.DefaultMix
	}
	w := mix.Weights()
	var sum float64
	for _, v := range w {
		sum += v
	}
	var fm [NumFaultKinds]float64
	if sum > 0 {
		for i, v := range w {
			fm[i] = v / sum
		}
	}
	return Features{
		Bench:     benchName,
		Scheme:    s.String(),
		PipeSig:   core.PipelineSig(s, cfg),
		ConfigKey: cfg.Key(),
		AR:        cfg.AR,
		FaultMix:  fm,
		SkipWidth: sh.SkipWidth,
		BitWidth:  sh.BitWidth,
		Requested: sh.Requested,
	}
}

// ExtractFeatures profiles the program with one traced fault-free run
// and returns fully profiled features: region cost (the fault
// population), whole-run instruction count, and the per-class
// instruction mix. The run is read-only with respect to the program —
// executions are pure functions of their inputs — so extraction
// cannot perturb any later campaign (the inertness property test pins
// this). On failure the static features are returned alongside the
// error, still usable unprofiled.
func ExtractFeatures(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, sh Shape) (Features, error) {
	f := StaticFeatures(p.Bench.Name, s, p.Cfg, sh)
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	trace := &machine.RegionTrace{}
	o := p.Run(s, inst, core.RunOpts{RegionTrace: trace, Cancel: cancel})
	if o.Err != nil {
		return f, fmt.Errorf("advice: fault-free profile run failed under %s: %w", s, o.Err)
	}
	if err := trace.Err(); err != nil {
		return f, fmt.Errorf("advice: %w", err)
	}
	total := trace.Total()
	if total == 0 {
		return f, fmt.Errorf("advice: no in-region instructions under %s", s)
	}
	var counts [machine.NumOpClasses]uint64
	for _, spn := range trace.Spans() {
		counts[spn.Class] += spn.N
	}
	for i, n := range counts {
		f.ClassMix[i] = float64(n) / float64(total)
	}
	f.Cost = total
	f.Instrs = o.Result.Instrs
	f.Profiled = true
	return f, nil
}

// RegionFeatures derives per-region features from program-level ones:
// same identity and fault model, with the region's own population and
// class mix. Used by incremental analyses to append one corpus record
// per region.
func RegionFeatures(program Features, population uint64, classMix [machine.NumOpClasses]float64, perRegionN int) Features {
	f := program
	f.Cost = population
	f.ClassMix = classMix
	f.Profiled = true
	f.Requested = perRegionN
	return f
}
