package advice

import (
	"math"
	"sort"
)

// Forecast is one advisory prediction. Advisory is always true on the
// wire — the PIN-205 contract requires the label at every boundary,
// so a consumer that strips it has to do so deliberately.
type Forecast struct {
	Advisory bool `json:"advisory"`
	// Protection is the forecast protection rate in percent, with the
	// interval the estimator expects to bracket the realized rate.
	Protection float64 `json:"protection"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	// WallSeconds is the forecast campaign wall time; WallKnown is
	// false when the corpus holds no timed neighbors (priors carry no
	// timing at all).
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	WallKnown   bool    `json:"wall_known"`
	// Source is "corpus" (nearest-neighbor blend) or "priors" (the
	// per-scheme fallback table).
	Source string `json:"source"`
	// Confidence is "low", "medium" or "high", from neighbor support.
	Confidence string `json:"confidence"`
	// CorpusSize is the total record count consulted; Neighbors how
	// many same-scheme records the blend actually used.
	CorpusSize int `json:"corpus_size"`
	Neighbors  int `json:"neighbors,omitempty"`
}

const (
	// kNeighbors bounds the distance-weighted blend.
	kNeighbors = 8
	// weightFloor keeps an exact-match neighbor (distance 0) from
	// collapsing the blend to a single record.
	weightFloor = 0.05
)

// schemePrior is the fallback forecast when the corpus holds no
// same-scheme record: wide intervals around the paper's Table-2
// ballparks. Priors never know wall time.
type schemePrior struct{ p, lo, hi float64 }

var schemePriors = map[string]schemePrior{
	"UNSAFE":       {45, 15, 75},
	"SWIFT":        {85, 60, 97},
	"SWIFT-R":      {93, 70, 99},
	"RSkip":        {90, 65, 99},
	"SWIFT-R-HARD": {98, 80, 100},
}

// defaultPrior covers schemes the table does not know (future
// pipelines): centered, very wide.
var defaultPrior = schemePrior{70, 25, 95}

// Estimate forecasts a campaign's outcome from the corpus: a
// distance-weighted nearest-neighbor blend over the same-scheme
// records, falling back to the per-scheme prior when none exist. It
// is a pure function of its arguments — no I/O, no clock — which is
// what makes the advisor trivially inert.
func Estimate(recs []Record, f Features) Forecast {
	var pool []Record
	for _, r := range recs {
		if r.Features.Scheme == f.Scheme {
			pool = append(pool, r)
		}
	}
	if len(pool) == 0 {
		return priorForecast(f.Scheme, len(recs))
	}

	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, len(pool))
	for i := range pool {
		cands[i] = cand{idx: i, d: distance(f, pool[i].Features)}
	}
	// Ties break on corpus order so the forecast is deterministic for
	// a given corpus file.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	k := kNeighbors
	if k > len(cands) {
		k = len(cands)
	}

	var wSum, pSum, hwSum float64
	var wallW, wallSum float64
	for _, c := range cands[:k] {
		lab := pool[c.idx].Labels
		w := 1 / (c.d + weightFloor)
		wSum += w
		pSum += w * lab.Protection
		hwSum += w * (lab.CIHi - lab.CILo) / 2
		if lab.WallSeconds > 0 && lab.Runs > 0 {
			wallW += w
			wallSum += w * lab.WallSeconds / float64(lab.Runs)
		}
	}
	p := pSum / wSum
	// The interval combines the neighbors' own sampling uncertainty
	// (mean Wilson half-width) with their disagreement (weighted
	// standard deviation): near-duplicates give a tight interval,
	// scattered neighbors an honest wide one.
	var varSum float64
	for _, c := range cands[:k] {
		dp := pool[c.idx].Labels.Protection - p
		varSum += (1 / (c.d + weightFloor)) * dp * dp
	}
	hw := hwSum/wSum + math.Sqrt(varSum/wSum)

	fc := Forecast{
		Advisory:   true,
		Protection: p,
		CILo:       clampPct(p - hw),
		CIHi:       clampPct(p + hw),
		Source:     "corpus",
		Confidence: confidence(len(pool)),
		CorpusSize: len(recs),
		Neighbors:  k,
	}
	if wallW > 0 && f.Requested > 0 {
		fc.WallSeconds = (wallSum / wallW) * float64(f.Requested)
		fc.WallKnown = true
	}
	return fc
}

func priorForecast(scheme string, corpusSize int) Forecast {
	pr, ok := schemePriors[scheme]
	if !ok {
		pr = defaultPrior
	}
	return Forecast{
		Advisory:   true,
		Protection: pr.p, CILo: pr.lo, CIHi: pr.hi,
		Source:     "priors",
		Confidence: "low",
		CorpusSize: corpusSize,
	}
}

func confidence(sameScheme int) string {
	switch {
	case sameScheme < 3:
		return "low"
	case sameScheme < 10:
		return "medium"
	}
	return "high"
}

// distance is an L1 dissimilarity over normalized features. The terms
// are scaled so one unit of distance roughly means "a categorically
// different campaign"; exact feature agreement gives 0.
func distance(a, b Features) float64 {
	d := 0.0
	if a.Bench != b.Bench {
		d += 0.5
	}
	if a.ConfigKey != b.ConfigKey {
		d += 0.1
	}
	d += math.Abs(a.AR - b.AR)
	d += math.Abs(float64(a.SkipWidth)-float64(b.SkipWidth)) / 8
	d += math.Abs(float64(a.BitWidth)-float64(b.BitWidth)) / 32
	d += logRatio(float64(a.Requested), float64(b.Requested)) / 4
	for i := range a.FaultMix {
		d += 0.5 * math.Abs(a.FaultMix[i]-b.FaultMix[i])
	}
	switch {
	case a.Profiled && b.Profiled:
		d += logRatio(float64(a.Cost), float64(b.Cost)) / 8
		d += logRatio(float64(a.Instrs), float64(b.Instrs)) / 8
		for i := range a.ClassMix {
			d += math.Abs(a.ClassMix[i] - b.ClassMix[i])
		}
	case a.Profiled != b.Profiled:
		// One side has cost features the other lacks; the profiled
		// dimensions are incomparable, so charge a flat penalty instead
		// of comparing zeros to real counts.
		d += 0.3
	}
	return d
}

// logRatio is |log10(x/y)| with zero treated as one (absent counts
// compare as equal, not infinitely far).
func logRatio(x, y float64) float64 {
	if x <= 0 {
		x = 1
	}
	if y <= 0 {
		y = 1
	}
	return math.Abs(math.Log10(x / y))
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
