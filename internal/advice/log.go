package advice

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// predictionsFile stores forecasts and their eventual outcomes —
// deliberately a different file from corpusFile. The engine's results
// flow into the corpus; the advisor's guesses flow here; nothing
// reads this file back into an execution decision.
const predictionsFile = "predictions.jsonl"

// Outcome is the realized result recorded next to a scored
// prediction.
type Outcome struct {
	Protection  float64 `json:"protection"`
	Runs        int     `json:"runs"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// AbsErr is |forecast − realized| in percentage points; CIHit
	// reports the realized protection fell inside the forecast
	// interval.
	AbsErr float64 `json:"abs_err"`
	CIHit  bool    `json:"ci_hit"`
}

// prediction is one logged forecast. A scored prediction is appended
// again in full with Outcome set; on load, the last line per ID wins.
type prediction struct {
	ID       string   `json:"id"`
	Features Features `json:"features"`
	Forecast Forecast `json:"forecast"`
	Outcome  *Outcome `json:"outcome,omitempty"`
}

// Log is the prediction store and scoring loop. With a directory it
// appends JSON lines to predictions.jsonl; with an empty directory it
// is memory-only.
type Log struct {
	mu    sync.Mutex
	path  string // "" = memory-only
	preds map[string]*prediction
	order []string
	next  int
}

// OpenLog loads (or creates) the prediction log under dir. Corrupt
// lines are skipped silently: predictions are diagnostics about the
// advisor, not data anything downstream depends on.
func OpenLog(dir string) (*Log, error) {
	l := &Log{preds: map[string]*prediction{}}
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("advice: predictions dir: %w", err)
	}
	l.path = filepath.Join(dir, predictionsFile)
	data, err := os.ReadFile(l.path)
	if errors.Is(err, os.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("advice: reading predictions: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var p prediction
		if err := json.Unmarshal(raw, &p); err != nil || p.ID == "" {
			continue
		}
		cp := p
		if _, seen := l.preds[p.ID]; !seen {
			l.order = append(l.order, p.ID)
		}
		l.preds[p.ID] = &cp
		var n int
		if _, err := fmt.Sscanf(p.ID, "p-%d", &n); err == nil && n >= l.next {
			l.next = n + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("advice: scanning predictions: %w", err)
	}
	return l, nil
}

// Record logs one forecast and returns its prediction ID, used later
// to attach the realized outcome.
func (l *Log) Record(f Features, fc Forecast) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := fmt.Sprintf("p-%06d", l.next)
	l.next++
	p := &prediction{ID: id, Features: f, Forecast: fc}
	if err := l.appendLocked(p); err != nil {
		return "", err
	}
	l.preds[id] = p
	l.order = append(l.order, id)
	return id, nil
}

// Score attaches the realized outcome to a prediction, computing the
// calibration terms (absolute error, CI hit). Unknown IDs report ok
// false — a daemon restarted without its advice dir simply has
// nothing to score.
func (l *Log) Score(id string, lab Labels) (Outcome, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p, ok := l.preds[id]
	if !ok || p.Outcome != nil {
		return Outcome{}, false
	}
	oc := &Outcome{
		Protection:  lab.Protection,
		Runs:        lab.Runs,
		WallSeconds: lab.WallSeconds,
		AbsErr:      math.Abs(p.Forecast.Protection - lab.Protection),
		CIHit:       lab.Protection >= p.Forecast.CILo && lab.Protection <= p.Forecast.CIHi,
	}
	p.Outcome = oc
	// Best-effort durability: the in-memory score is already
	// authoritative for this process.
	_ = l.appendLocked(p)
	return *oc, true
}

func (l *Log) appendLocked(p *prediction) error {
	if l.path == "" {
		return nil
	}
	line, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("advice: encoding prediction: %w", err)
	}
	fd, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("advice: appending prediction: %w", err)
	}
	if _, err := fd.Write(append(line, '\n')); err != nil {
		fd.Close()
		return fmt.Errorf("advice: appending prediction: %w", err)
	}
	return fd.Close()
}

// Calibration reports the scoring loop's running accuracy.
func (l *Log) Calibration() Calibration {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := Calibration{Predictions: len(l.order)}
	var absSum float64
	hits := 0
	for _, id := range l.order {
		p := l.preds[id]
		if p.Outcome == nil {
			continue
		}
		c.Scored++
		absSum += p.Outcome.AbsErr
		if p.Outcome.CIHit {
			hits++
		}
	}
	if c.Scored > 0 {
		c.MAE = absSum / float64(c.Scored)
		c.CICoverage = float64(hits) / float64(c.Scored)
	}
	return c
}
