package advice

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// corpusFile is the corpus's on-disk name under the advice dir. It is
// a sibling of — never the same file as — predictionsFile: outcomes
// the engine produced and forecasts the advisor made are separate
// stores by construction.
const corpusFile = "corpus.jsonl"

// CorruptCorpusError reports corrupt lines found (and healed away)
// while loading a corpus. The load still succeeds — the valid records
// are kept and the file is rewritten without the corrupt lines — so
// callers treat this as a warning, not a failure, mirroring
// result.Cache's corrupt-entry fallback.
type CorruptCorpusError struct {
	Path    string
	Dropped int   // corrupt lines removed by the heal
	Err     error // the first line's parse failure
}

func (e *CorruptCorpusError) Error() string {
	return fmt.Sprintf("advice: corpus %s: dropped %d corrupt record(s) (healed; priors cover the gap): %v",
		e.Path, e.Dropped, e.Err)
}

func (e *CorruptCorpusError) Unwrap() error { return e.Err }

// Corpus is the append-only store of campaign outcome records. With a
// directory it persists one JSON line per record to corpus.jsonl;
// with an empty directory it is memory-only and dies with the
// process. All methods are safe for concurrent use.
type Corpus struct {
	mu   sync.Mutex
	path string // "" = memory-only
	recs []Record
}

// OpenCorpus loads (or creates) the corpus under dir; dir == ""
// returns a memory-only corpus. Corrupt lines do not fail the load:
// they are dropped, the file is rewritten with the surviving records
// (the heal), and a *CorruptCorpusError is returned alongside the
// usable corpus. Only real I/O failures return a nil corpus.
func OpenCorpus(dir string) (*Corpus, error) {
	if dir == "" {
		return &Corpus{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("advice: corpus dir: %w", err)
	}
	c := &Corpus{path: filepath.Join(dir, corpusFile)}
	data, err := os.ReadFile(c.path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("advice: reading corpus: %w", err)
	}
	var firstBad error
	dropped := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		rec, err := ParseRecord(raw)
		if err != nil {
			dropped++
			if firstBad == nil {
				var cre *CorruptRecordError
				if errors.As(err, &cre) {
					cre.Line = line
				}
				firstBad = err
			}
			continue
		}
		c.recs = append(c.recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("advice: scanning corpus: %w", err)
	}
	if dropped == 0 {
		return c, nil
	}
	// Heal: rewrite with only the surviving records so the corruption
	// is paid for once, not on every load.
	if err := c.rewrite(); err != nil {
		return nil, err
	}
	return c, &CorruptCorpusError{Path: c.path, Dropped: dropped, Err: firstBad}
}

// rewrite replaces the corpus file with the in-memory records via a
// temp-file rename, so a crash mid-heal never truncates the store.
func (c *Corpus) rewrite() error {
	var buf bytes.Buffer
	for _, rec := range c.recs {
		line, err := rec.Marshal()
		if err != nil {
			return fmt.Errorf("advice: re-encoding corpus: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("advice: healing corpus: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("advice: healing corpus: %w", err)
	}
	return nil
}

// Append validates and stores one record, durably when the corpus is
// file-backed.
func (c *Corpus) Append(f Features, lab Labels) error {
	rec, err := NewRecord(f, lab)
	if err != nil {
		return err
	}
	line, err := rec.Marshal()
	if err != nil {
		return fmt.Errorf("advice: encoding record: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.path != "" {
		fd, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("advice: appending record: %w", err)
		}
		if _, err := fd.Write(append(line, '\n')); err != nil {
			fd.Close()
			return fmt.Errorf("advice: appending record: %w", err)
		}
		if err := fd.Close(); err != nil {
			return fmt.Errorf("advice: appending record: %w", err)
		}
	}
	c.recs = append(c.recs, rec)
	return nil
}

// Snapshot returns a copy of the records for estimation.
func (c *Corpus) Snapshot() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.recs))
	copy(out, c.recs)
	return out
}

// Len reports the record count.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}
