package advice

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzAdviceRecordRoundTrip pins the corpus codec contract under
// arbitrary input: ParseRecord either rejects with the typed
// *CorruptRecordError or accepts — and an accepted record must
// re-marshal (validation guarantees finite floats, so json.Marshal
// cannot fail), reparse to the same value, and re-marshal to the same
// bytes (unmarshal∘marshal is a fixed point). No input may panic.
func FuzzAdviceRecordRoundTrip(f *testing.F) {
	good, err := NewRecord(sampleFeatures(), sampleLabels())
	if err != nil {
		f.Fatal(err)
	}
	goodLine, _ := good.Marshal()
	f.Add(goodLine)
	f.Add([]byte(""))
	f.Add([]byte("not json"))
	f.Add([]byte(`{"v":1}`))
	f.Add([]byte(`{"v":1,"features":{"scheme":"RSkip"},"labels":{"protection":1e999}}`))
	f.Add(goodLine[:len(goodLine)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ParseRecord(data)
		if err != nil {
			var cre *CorruptRecordError
			if !errors.As(err, &cre) {
				t.Fatalf("parse error %T is not *CorruptRecordError: %v", err, err)
			}
			return
		}
		line, err := rec.Marshal()
		if err != nil {
			t.Fatalf("accepted record fails to marshal: %v", err)
		}
		back, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("re-parse of accepted record failed: %v", err)
		}
		if !reflect.DeepEqual(rec, back) {
			t.Fatalf("round trip changed record:\n  %+v\n  %+v", rec, back)
		}
		line2, err := back.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, line2) {
			t.Fatalf("marshal not a fixed point:\n  %s\n  %s", line, line2)
		}
	})
}
