package advice

import (
	"context"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/machine"
)

// TestAdvisorInert is the tentpole property: running the full advisor
// lifecycle around a campaign — profile extraction before, recorded
// forecast, concurrent advisory queries while the campaign runs,
// outcome observation after — must leave the campaign's fault.Result
// bit-identical to a campaign that never touched the advisor. Checked
// on every execution backend; under -race the concurrent query hammer
// doubles as the data-race stress for the advise path.
func TestAdvisorInert(t *testing.T) {
	b, err := bench.ByName("musum")
	if err != nil {
		t.Fatal(err)
	}
	backends := []struct {
		name string
		be   machine.Backend
	}{
		{"reference", machine.BackendReference},
		{"fast", machine.BackendFast},
		{"compiled", machine.BackendCompiled},
	}
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultConfig()
			cfg.Backend = bk.be
			p, err := core.Build(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			inst := b.Gen(bench.TestSeed(3), bench.ScaleTiny)
			fcfg := fault.Config{N: 120, Seed: 99, Workers: 2}
			scheme := core.RSkip

			// Control: no advisor anywhere near the campaign.
			quiet, err := fault.Campaign(context.Background(), p, scheme, inst, fcfg)
			if err != nil {
				t.Fatal(err)
			}

			// Treatment: the identical campaign with the advisor running
			// its entire lifecycle around and during it.
			adv, err := New(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			sh := Shape{Mix: fcfg.Mix, Requested: fcfg.N}
			feats, err := ExtractFeatures(context.Background(), p, scheme, inst, sh)
			if err != nil {
				t.Fatal(err)
			}
			fc, predID, err := adv.Forecast(feats)
			if err != nil {
				t.Fatal(err)
			}
			if !fc.Advisory {
				t.Error("forecast not labeled advisory")
			}

			// Hammer advisory queries concurrently with the campaign.
			done := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
							adv.Estimate(feats)
							adv.Calibration()
						}
					}
				}()
			}
			start := time.Now()
			advised, err := fault.Campaign(context.Background(), p, scheme, inst, fcfg)
			wall := time.Since(start).Seconds()
			close(done)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := adv.Observe(predID, feats, ResultLabels(advised, wall)); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(quiet, advised) {
				t.Errorf("advisor lifecycle perturbed the campaign:\n  quiet:   %+v\n  advised: %+v", quiet, advised)
			}
		})
	}
}

// TestAdviceNotImportedByEngines pins the structural half of the
// inertness contract: the packages that execute, analyze or merge
// campaigns must not import this one, so no code path of theirs can
// consult a prediction. For fault/core/machine the compiler already
// enforces it (an import back would cycle); for result and fabric —
// which advice does not import — this test is the enforcement.
func TestAdviceNotImportedByEngines(t *testing.T) {
	engines := []string{"fault", "core", "machine", "result", "fabric", "ir", "pass"}
	fset := token.NewFileSet()
	for _, pkg := range engines {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for _, imp := range f.Imports {
				if strings.Contains(imp.Path.Value, "internal/advice") {
					t.Errorf("%s imports the advice package — predictions must never influence the engine", path)
				}
			}
		}
	}
}
