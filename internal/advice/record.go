package advice

import (
	"encoding/json"
	"fmt"
	"math"
)

// recordVersion is the corpus record schema version. ParseRecord
// rejects other versions as corrupt rather than guessing at field
// meanings.
const recordVersion = 1

// Record is one corpus line: the static features of a finished
// campaign (or one region of an incremental analysis) and the labels
// it realized. Records are encoded one JSON object per line.
type Record struct {
	V        int      `json:"v"`
	Features Features `json:"features"`
	Labels   Labels   `json:"labels"`
}

// CorruptRecordError reports a corpus line that could not be decoded
// or failed validation. It is a distinct type so loaders can heal
// (drop the line, keep the rest) instead of discarding a whole
// corpus, mirroring result.CorruptEntryError's fall-back-to-live-run
// semantics.
type CorruptRecordError struct {
	// Line is the 1-based line number in the corpus file, 0 for a
	// standalone record.
	Line int
	Err  error
}

func (e *CorruptRecordError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("advice: corrupt corpus record at line %d (dropped on heal): %v", e.Line, e.Err)
	}
	return fmt.Sprintf("advice: corrupt record: %v", e.Err)
}

func (e *CorruptRecordError) Unwrap() error { return e.Err }

// Marshal encodes the record as one JSON line (no trailing newline).
// NewRecord-validated records always marshal; hand-built records with
// non-finite floats fail like json.Marshal does.
func (r Record) Marshal() ([]byte, error) {
	return json.Marshal(r)
}

// ParseRecord decodes and validates one corpus line. The
// decode/encode pair is a fixed point: for any input that parses,
// Marshal produces a canonical line that re-parses to the identical
// record — the property the fuzz harness pins. Invalid input returns
// a *CorruptRecordError.
func ParseRecord(data []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return Record{}, &CorruptRecordError{Err: err}
	}
	if err := r.validate(); err != nil {
		return Record{}, &CorruptRecordError{Err: err}
	}
	return r, nil
}

// validate rejects records whose fields cannot have come from a real
// campaign: wrong schema version, non-finite or out-of-range floats,
// negative counts. Finiteness matters doubly — json.Marshal cannot
// encode NaN/Inf, so validated records are guaranteed re-encodable.
func (r *Record) validate() error {
	if r.V != recordVersion {
		return fmt.Errorf("record version %d, want %d", r.V, recordVersion)
	}
	f, lab := &r.Features, &r.Labels
	if f.Scheme == "" {
		return fmt.Errorf("missing scheme")
	}
	for _, c := range []struct {
		name string
		v    float64
		lo   float64
		hi   float64
	}{
		{"features.ar", f.AR, 0, 1e6},
		{"labels.protection", lab.Protection, 0, 100},
		{"labels.ci_lo", lab.CILo, 0, 100},
		{"labels.ci_hi", lab.CIHi, 0, 100},
		{"labels.wall_seconds", lab.WallSeconds, 0, math.MaxFloat64},
	} {
		if math.IsNaN(c.v) || c.v < c.lo || c.v > c.hi {
			return fmt.Errorf("%s = %v out of [%g, %g]", c.name, c.v, c.lo, c.hi)
		}
	}
	if lab.CILo > lab.CIHi {
		return fmt.Errorf("labels ci_lo %v > ci_hi %v", lab.CILo, lab.CIHi)
	}
	for i, w := range f.FaultMix {
		if math.IsNaN(w) || w < 0 || w > 1 {
			return fmt.Errorf("features.fault_mix[%d] = %v out of [0, 1]", i, w)
		}
	}
	for i, s := range f.ClassMix {
		if math.IsNaN(s) || s < 0 || s > 1 {
			return fmt.Errorf("features.class_mix[%d] = %v out of [0, 1]", i, s)
		}
	}
	if f.SkipWidth < 0 || f.BitWidth < 0 || f.Requested < 0 || lab.Runs < 0 {
		return fmt.Errorf("negative count (skip_width=%d bit_width=%d requested=%d runs=%d)",
			f.SkipWidth, f.BitWidth, f.Requested, lab.Runs)
	}
	return nil
}

// NewRecord assembles a validated record from features and labels,
// clamping nothing: invalid inputs are an error, because a record the
// estimator would have to second-guess is worse than no record.
func NewRecord(f Features, lab Labels) (Record, error) {
	r := Record{V: recordVersion, Features: f, Labels: lab}
	if err := r.validate(); err != nil {
		return Record{}, &CorruptRecordError{Err: err}
	}
	return r, nil
}
