package advice

import (
	"math"
	"math/rand"
	"testing"

	"rskip/internal/stats"
)

// The calibration substrate: a synthetic corpus whose labels come
// from a known smooth ground-truth function of the features. With the
// truth in hand, the tests can assert the two properties the ISSUE
// pins — MAE shrinks monotonically as the corpus grows, and the
// forecast intervals bracket truth at (at least) the stated level.

var synthBenches = []string{"alpha", "beta", "gamma"}

// synthTruth is the ground-truth protection rate: smooth in AR, the
// ALU share and the bench identity, spanning roughly [55, 97].
func synthTruth(f Features) float64 {
	p := 55 + 25*f.AR + 15*f.ClassMix[0]
	switch f.Bench {
	case "beta":
		p += 2
	case "gamma":
		p -= 2
	}
	return clampPct(p)
}

// synthWallPerRun is the ground-truth cost: a fixed per-run wall cost,
// so the forecast wall time should recover Requested × this exactly.
const synthWallPerRun = 0.0015

func synthFeatures(rng *rand.Rand) Features {
	f := Features{
		Bench:     synthBenches[rng.Intn(len(synthBenches))],
		Scheme:    "SWIFT-R",
		ConfigKey: "synthetic",
		AR:        rng.Float64(),
		Requested: 200 + rng.Intn(800),
		Profiled:  true,
	}
	f.Cost = uint64(1000 * math.Pow(10, 3*rng.Float64()))
	f.Instrs = 4 * f.Cost
	f.FaultMix = [NumFaultKinds]float64{0.8, 0.1, 0.05, 0.05, 0, 0}
	alu := 0.3 + 0.5*rng.Float64()
	mem := (1 - alu) * rng.Float64()
	f.ClassMix[0] = alu
	f.ClassMix[2] = mem
	f.ClassMix[3] = 1 - alu - mem
	return f
}

func synthLabels(t *testing.T, f Features) Labels {
	t.Helper()
	p := synthTruth(f)
	n := f.Requested
	k := int(p/100*float64(n) + 0.5)
	lo, hi := stats.Wilson(k, n, stats.Z95)
	return Labels{
		Protection: p, CILo: 100 * lo, CIHi: 100 * hi, Runs: n,
		WallSeconds: synthWallPerRun * float64(n),
	}
}

func synthCorpus(t *testing.T, rng *rand.Rand, n int) []Record {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		f := synthFeatures(rng)
		rec, err := NewRecord(f, synthLabels(t, f))
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
	}
	return recs
}

// TestEstimateMAEShrinksWithCorpus: nested corpora (each a prefix of
// the next) must yield strictly decreasing MAE against ground truth.
func TestEstimateMAEShrinksWithCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := synthCorpus(t, rng, 512)
	queries := make([]Features, 100)
	for i := range queries {
		queries[i] = synthFeatures(rng)
	}
	sizes := []int{8, 64, 512}
	maes := make([]float64, len(sizes))
	for si, size := range sizes {
		var sum float64
		for _, q := range queries {
			fc := Estimate(full[:size], q)
			if fc.Source != "corpus" {
				t.Fatalf("size %d: source %q, want corpus", size, fc.Source)
			}
			sum += math.Abs(fc.Protection - synthTruth(q))
		}
		maes[si] = sum / float64(len(queries))
	}
	t.Logf("MAE by corpus size: %d→%.3f %d→%.3f %d→%.3f",
		sizes[0], maes[0], sizes[1], maes[1], sizes[2], maes[2])
	for i := 1; i < len(maes); i++ {
		if !(maes[i] < maes[i-1]) {
			t.Errorf("MAE did not shrink: size %d → %.4f, size %d → %.4f",
				sizes[i-1], maes[i-1], sizes[i], maes[i])
		}
	}
}

// TestEstimateCICoversTruth: with a populated corpus, the forecast
// interval must bracket ground truth at ≥ 80% of queries (the level
// the Calibration doc states).
func TestEstimateCICoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	full := synthCorpus(t, rng, 512)
	hits, total := 0, 200
	for i := 0; i < total; i++ {
		q := synthFeatures(rng)
		fc := Estimate(full, q)
		if tr := synthTruth(q); fc.CILo <= tr && tr <= fc.CIHi {
			hits++
		}
	}
	cov := float64(hits) / float64(total)
	t.Logf("CI coverage: %.3f", cov)
	if cov < 0.8 {
		t.Errorf("CI coverage %.3f < 0.80", cov)
	}
}

// TestEstimateWallForecast: with a constant ground-truth per-run cost,
// the wall forecast must recover Requested × cost.
func TestEstimateWallForecast(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	full := synthCorpus(t, rng, 64)
	q := synthFeatures(rng)
	q.Requested = 1000
	fc := Estimate(full, q)
	if !fc.WallKnown {
		t.Fatal("wall forecast unknown despite timed neighbors")
	}
	want := synthWallPerRun * float64(q.Requested)
	if math.Abs(fc.WallSeconds-want) > 1e-9 {
		t.Errorf("WallSeconds = %v, want %v", fc.WallSeconds, want)
	}
}

// TestEstimateDeterministic: same corpus, same query, same forecast —
// byte-stable CLI output depends on it.
func TestEstimateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	full := synthCorpus(t, rng, 32)
	q := synthFeatures(rng)
	a, b := Estimate(full, q), Estimate(full, q)
	if a != b {
		t.Errorf("two estimates differ:\n  %+v\n  %+v", a, b)
	}
}

// TestScoringLoop: predictions recorded, scored against outcomes, and
// reported through Calibration.
func TestScoringLoop(t *testing.T) {
	adv, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := sampleFeatures()
	fc, id, err := adv.Forecast(f)
	if err != nil || id == "" {
		t.Fatalf("Forecast: id=%q err=%v", id, err)
	}
	if !fc.Advisory {
		t.Error("forecast not labeled advisory")
	}
	c := adv.Calibration()
	if c.Predictions != 1 || c.Scored != 0 {
		t.Fatalf("pre-score calibration %+v", c)
	}
	lab := sampleLabels()
	oc, scored, err := adv.Observe(id, f, lab)
	if err != nil || !scored {
		t.Fatalf("Observe: scored=%v err=%v", scored, err)
	}
	if want := math.Abs(fc.Protection - lab.Protection); math.Abs(oc.AbsErr-want) > 1e-12 {
		t.Errorf("AbsErr = %v, want %v", oc.AbsErr, want)
	}
	c = adv.Calibration()
	if c.Scored != 1 || c.MAE != oc.AbsErr {
		t.Errorf("post-score calibration %+v", c)
	}
	if adv.CorpusSize() != 1 {
		t.Errorf("corpus size %d, want 1", adv.CorpusSize())
	}
	// Scoring an unknown or already-scored ID is a no-op, not an error.
	if _, scored, _ := adv.Observe(id, f, lab); scored {
		t.Error("double score accepted")
	}
	if _, scored, _ := adv.Observe("p-999999", f, lab); scored {
		t.Error("unknown prediction scored")
	}
}
