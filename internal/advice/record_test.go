package advice

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func sampleFeatures() Features {
	f := Features{
		Bench: "conv1d", Scheme: "SWIFT-R",
		PipeSig: "sig", ConfigKey: "ar=0.2",
		AR:        0.2,
		SkipWidth: 1, BitWidth: 2,
		Requested: 500,
		Profiled:  true,
		Cost:      120000, Instrs: 480000,
	}
	f.FaultMix = [NumFaultKinds]float64{0.8, 0.1, 0.05, 0.05, 0, 0}
	f.ClassMix[0] = 0.6
	f.ClassMix[2] = 0.4
	return f
}

func sampleLabels() Labels {
	return Labels{Protection: 92.5, CILo: 90.1, CIHi: 94.3, Runs: 500, WallSeconds: 1.25}
}

func TestRecordRoundTrip(t *testing.T) {
	rec, err := NewRecord(sampleFeatures(), sampleLabels())
	if err != nil {
		t.Fatal(err)
	}
	line, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip changed the record:\n  out: %+v\n  in:  %+v", rec, back)
	}
	line2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, line2) {
		t.Fatalf("marshal is not a fixed point:\n  %s\n  %s", line, line2)
	}
}

func TestParseRecordRejects(t *testing.T) {
	good, err := NewRecord(sampleFeatures(), sampleLabels())
	if err != nil {
		t.Fatal(err)
	}
	goodLine, _ := good.Marshal()
	cases := []struct {
		name string
		line string
	}{
		{"garbage", "not json at all"},
		{"truncated", string(goodLine[:len(goodLine)/2])},
		{"wrong version", strings.Replace(string(goodLine), `"v":1`, `"v":7`, 1)},
		{"missing scheme", strings.Replace(string(goodLine), `"scheme":"SWIFT-R"`, `"scheme":""`, 1)},
		{"protection out of range", strings.Replace(string(goodLine), `"protection":92.5`, `"protection":920.5`, 1)},
		{"inverted ci", strings.Replace(string(goodLine), `"ci_lo":90.1`, `"ci_lo":99.9`, 1)},
		{"negative runs", strings.Replace(string(goodLine), `"runs":500`, `"runs":-4`, 1)},
	}
	for _, tc := range cases {
		_, err := ParseRecord([]byte(tc.line))
		if err == nil {
			t.Errorf("%s: parsed without error", tc.name)
			continue
		}
		var cre *CorruptRecordError
		if !errors.As(err, &cre) {
			t.Errorf("%s: error %T is not *CorruptRecordError", tc.name, err)
		}
	}
}
