package analysis

import (
	"reflect"
	"sort"
	"testing"

	"rskip/internal/ir"
)

// cfgFunc hand-builds a Func whose blocks carry exactly the given
// terminators — the minimal structure BuildCFG, Dominators and
// FindLoops consume. edges[i] lists block i's successors: none means
// ret, one means br, two means condbr.
func cfgFunc(t *testing.T, edges [][]int) *ir.Func {
	t.Helper()
	f := &ir.Func{Name: "hand", NumRegs: 1, RegType: []ir.Type{ir.Int}}
	for bi, succ := range edges {
		var term ir.Instr
		switch len(succ) {
		case 0:
			term = ir.Instr{Op: ir.OpRet}
		case 1:
			term = ir.Instr{Op: ir.OpBr, Blocks: []int{succ[0]}}
		case 2:
			term = ir.Instr{Op: ir.OpCondBr, Args: []ir.Reg{0}, Blocks: []int{succ[0], succ[1]}}
		default:
			t.Fatalf("block %d: %d successors", bi, len(succ))
		}
		f.Blocks = append(f.Blocks, ir.Block{Instrs: []ir.Instr{term}})
	}
	return f
}

func loopsOf(t *testing.T, edges [][]int) []Loop {
	t.Helper()
	c := BuildCFG(cfgFunc(t, edges))
	return FindLoops(c, Dominators(c))
}

// TestFindLoopsHandBuilt pins loop detection on explicit CFG shapes,
// independent of what the MiniC lowering happens to emit.
func TestFindLoopsHandBuilt(t *testing.T) {
	cases := []struct {
		name  string
		edges [][]int
		want  []Loop // Header, Latch, sorted block set, Exits, Parent, Depth
	}{
		{
			name: "acyclic diamond has no loops",
			edges: [][]int{
				{1, 2}, // 0
				{3},    // 1
				{3},    // 2
				{},     // 3
			},
			want: nil,
		},
		{
			name: "self-loop",
			edges: [][]int{
				{1},    // 0
				{1, 2}, // 1 -> itself or exit
				{},     // 2
			},
			want: []Loop{{Header: 1, Latch: 1, Blocks: map[int]bool{1: true}, Exits: []int{2}, Parent: -1, Depth: 0}},
		},
		{
			name: "while shape",
			edges: [][]int{
				{1},    // 0 entry
				{2, 3}, // 1 header
				{1},    // 2 body/latch
				{},     // 3 exit
			},
			want: []Loop{{Header: 1, Latch: 2, Blocks: map[int]bool{1: true, 2: true}, Exits: []int{3}, Parent: -1, Depth: 0}},
		},
		{
			name: "nested loops",
			edges: [][]int{
				{1},    // 0 entry
				{2, 5}, // 1 outer header
				{3},    // 2 outer body head
				{3, 4}, // 3 inner self-loop
				{1},    // 4 outer latch
				{},     // 5 exit
			},
			want: []Loop{
				{Header: 1, Latch: 4, Blocks: map[int]bool{1: true, 2: true, 3: true, 4: true}, Exits: []int{5}, Parent: -1, Depth: 0},
				{Header: 3, Latch: 3, Blocks: map[int]bool{3: true}, Exits: []int{4}, Parent: 0, Depth: 1},
			},
		},
		{
			name: "two sibling loops",
			edges: [][]int{
				{1},    // 0
				{1, 2}, // 1 first self-loop
				{3},    // 2
				{3, 4}, // 3 second self-loop
				{},     // 4
			},
			want: []Loop{
				{Header: 1, Latch: 1, Blocks: map[int]bool{1: true}, Exits: []int{2}, Parent: -1, Depth: 0},
				{Header: 3, Latch: 3, Blocks: map[int]bool{3: true}, Exits: []int{4}, Parent: -1, Depth: 0},
			},
		},
		{
			name: "loop with break has two exits",
			edges: [][]int{
				{1},    // 0
				{2, 4}, // 1 header: continue or normal exit
				{3, 5}, // 2 body: latch or break
				{1},    // 3 latch
				{},     // 4 normal exit
				{},     // 5 break target
			},
			want: []Loop{{Header: 1, Latch: 3, Blocks: map[int]bool{1: true, 2: true, 3: true}, Exits: []int{4, 5}, Parent: -1, Depth: 0}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := loopsOf(t, tc.edges)
			if len(got) != len(tc.want) {
				t.Fatalf("found %d loops, want %d: %+v", len(got), len(tc.want), got)
			}
			for i := range got {
				g, w := got[i], tc.want[i]
				if g.Header != w.Header || g.Latch != w.Latch {
					t.Errorf("loop %d: header/latch = %d/%d, want %d/%d", i, g.Header, g.Latch, w.Header, w.Latch)
				}
				if !reflect.DeepEqual(g.Blocks, w.Blocks) {
					t.Errorf("loop %d: blocks = %v, want %v", i, g.SortedBlocks(), w.Blocks)
				}
				if !reflect.DeepEqual(g.Exits, w.Exits) {
					t.Errorf("loop %d: exits = %v, want %v", i, g.Exits, w.Exits)
				}
				if g.Depth != w.Depth {
					t.Errorf("loop %d: depth = %d, want %d", i, g.Depth, w.Depth)
				}
			}
			// Cross-check nesting via InnermostLoop.
			if tc.name == "nested loops" {
				inner := InnermostLoop(len(tc.edges), got)
				if inner[3] == inner[1] {
					t.Error("inner header must map to the inner loop, not the outer")
				}
				if got[1].Parent != 0 {
					t.Errorf("inner loop parent = %d, want 0", got[1].Parent)
				}
			}
		})
	}
}

// costFunc hand-builds a straight-line or looped function with a known
// instruction mix for cost-model tests.
func costFunc(blocks [][]ir.Op, edges [][]int) *ir.Func {
	f := &ir.Func{Name: "cost", NumRegs: 1, RegType: []ir.Type{ir.Int}}
	for bi, ops := range blocks {
		var blk ir.Block
		for _, op := range ops {
			blk.Instrs = append(blk.Instrs, ir.Instr{Op: op})
		}
		succ := edges[bi]
		switch len(succ) {
		case 0:
			blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpRet})
		case 1:
			blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpBr, Blocks: []int{succ[0]}})
		case 2:
			blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpCondBr, Args: []ir.Reg{0}, Blocks: []int{succ[0], succ[1]}})
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}

// TestCostModelHandBuilt pins FuncCost numbers on hand-built shapes:
// per-op weights, the assumed trip-count multiplier per nesting level,
// and call-cost composition.
func TestCostModelHandBuilt(t *testing.T) {
	t.Run("straight line adds op costs", func(t *testing.T) {
		// add(1) + mul(2) + load(2) + div(8) + sqrt(12) + ret(1) = 26
		f := costFunc([][]ir.Op{{ir.OpAdd, ir.OpMul, ir.OpLoad, ir.OpDiv, ir.OpSqrt}}, [][]int{{}})
		m := &ir.Module{Funcs: []*ir.Func{f}}
		if got := FuncCost(m, 0); got != 26 {
			t.Errorf("FuncCost = %d, want 26", got)
		}
	})
	t.Run("loop body scales by assumed trip count", func(t *testing.T) {
		// b0: br(1); b1 (self-loop): add(1)+condbr(1) at depth 1 -> 8x;
		// b2: ret(1). Total = 1 + 8*2 + 1 = 18.
		f := costFunc([][]ir.Op{{}, {ir.OpAdd}, {}}, [][]int{{1}, {1, 2}, {}})
		m := &ir.Module{Funcs: []*ir.Func{f}}
		if got := FuncCost(m, 0); got != 18 {
			t.Errorf("FuncCost = %d, want 18", got)
		}
	})
	t.Run("nesting multiplies", func(t *testing.T) {
		// Nested shape as in TestFindLoopsHandBuilt: block 3 at depth 2
		// (8^2 = 64x), blocks 1,2,4 at depth 1 (8x), 0 and 5 at depth 0.
		// b0: br = 1; b1: condbr = 8; b2: br = 8; b3: fmul+condbr = 64*(3+1);
		// b4: br = 8; b5: ret = 1. Total = 1+8+8+256+8+1 = 282.
		f := costFunc(
			[][]ir.Op{{}, {}, {}, {ir.OpFMul}, {}, {}},
			[][]int{{1}, {2, 5}, {3}, {3, 4}, {1}, {}})
		m := &ir.Module{Funcs: []*ir.Func{f}}
		if got := FuncCost(m, 0); got != 282 {
			t.Errorf("FuncCost = %d, want 282", got)
		}
	})
	t.Run("runtime hooks are free", func(t *testing.T) {
		f := costFunc([][]ir.Op{{ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit}}, [][]int{{}})
		m := &ir.Module{Funcs: []*ir.Func{f}}
		if got := FuncCost(m, 0); got != 1 { // just the ret
			t.Errorf("FuncCost = %d, want 1 (hooks must cost 0)", got)
		}
	})
	t.Run("call adds callee cost plus overhead", func(t *testing.T) {
		// callee: exp(16) + ret(1) = 17. caller: call(2+17) + ret(1) = 20.
		callee := costFunc([][]ir.Op{{ir.OpExp}}, [][]int{{}})
		caller := &ir.Func{Name: "caller", NumRegs: 1, RegType: []ir.Type{ir.Int}}
		caller.Blocks = []ir.Block{{Instrs: []ir.Instr{
			{Op: ir.OpCall, Callee: 0},
			{Op: ir.OpRet},
		}}}
		m := &ir.Module{Funcs: []*ir.Func{callee, caller}}
		if got := FuncCost(m, 1); got != 20 {
			t.Errorf("FuncCost = %d, want 20", got)
		}
	})
	t.Run("recursion is cut off", func(t *testing.T) {
		// self-call: call(2 + 64 recursive default) + ret(1) = 67.
		f := &ir.Func{Name: "rec", NumRegs: 1, RegType: []ir.Type{ir.Int}}
		f.Blocks = []ir.Block{{Instrs: []ir.Instr{
			{Op: ir.OpCall, Callee: 0},
			{Op: ir.OpRet},
		}}}
		m := &ir.Module{Funcs: []*ir.Func{f}}
		if got := FuncCost(m, 0); got != 67 {
			t.Errorf("FuncCost = %d, want 67", got)
		}
	})
	t.Run("region cost relative to base depth", func(t *testing.T) {
		// While-shape loop {1,2}; region = loop body at baseDepth 1:
		// no extra scaling — condbr(1) + add(1)+br(1) = 3.
		f := costFunc([][]ir.Op{{}, {}, {ir.OpAdd}, {}}, [][]int{{1}, {2, 3}, {1}, {}})
		m := &ir.Module{Funcs: []*ir.Func{f}}
		c := BuildCFG(f)
		idom := Dominators(c)
		loops := FindLoops(c, idom)
		if len(loops) != 1 {
			t.Fatalf("want 1 loop, got %d", len(loops))
		}
		inner := InnermostLoop(len(f.Blocks), loops)
		got := RegionCost(m, f, loops[0].Blocks, loops, inner, 1)
		if got != 3 {
			t.Errorf("RegionCost(baseDepth=1) = %d, want 3", got)
		}
		// At baseDepth 0 the same region scales by one trip factor: 24.
		if got := RegionCost(m, f, loops[0].Blocks, loops, inner, 0); got != 24 {
			t.Errorf("RegionCost(baseDepth=0) = %d, want 24", got)
		}
	})
}

// TestOpCostOrdering pins the relative expense classes the candidate
// detector depends on (transcendental > sqrt > div > fmul > mul > add).
func TestOpCostOrdering(t *testing.T) {
	order := []ir.Op{ir.OpExp, ir.OpSqrt, ir.OpDiv, ir.OpFMul, ir.OpMul, ir.OpAdd}
	costs := make([]int, len(order))
	for i, op := range order {
		costs[i] = opCost(op)
	}
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(costs))) {
		t.Errorf("op costs not in descending expense order: %v", costs)
	}
	if opCost(ir.OpLog) != opCost(ir.OpExp) || opCost(ir.OpPow) != opCost(ir.OpExp) {
		t.Error("transcendentals must share a cost class")
	}
	if opCost(ir.OpRem) != opCost(ir.OpDiv) || opCost(ir.OpFDiv) != opCost(ir.OpDiv) {
		t.Error("division variants must share a cost class")
	}
}
