package analysis

import (
	"fmt"
	"sort"

	"rskip/internal/ir"
)

// Candidate describes one loop eligible for prediction-based
// protection: a counted loop whose body performs an expensive value
// computation (an inner loop or a user call) and stores exactly one
// value per iteration. This is the pattern of Figure 4 in the paper.
type Candidate struct {
	Func      int
	LoopIdx   int
	Preheader int
	Header    int
	Latch     int
	BodyEntry int
	Region    map[int]bool // loop blocks minus header and latch

	IV   ir.Reg // canonical induction variable (Int)
	Step int64  // IV increment per iteration

	StoreBlock int
	StoreIdx   int
	AddrReg    ir.Reg
	ValueReg   ir.Reg
	ValueFloat bool

	// Invariants are the region's upward-exposed registers other than
	// the IV, in ascending register order; they become the recompute
	// slice's extra parameters and are captured at loop entry.
	Invariants []ir.Reg

	HasCall      bool
	HasInnerLoop bool
	Cost         int // static cost of one iteration's value computation
}

// Name returns a diagnostic label.
func (c *Candidate) Name(m *ir.Module) string {
	return fmt.Sprintf("%s.loop@b%d", m.Funcs[c.Func].Name, c.Header)
}

// Options configures candidate detection.
type Options struct {
	// CostThreshold is the minimum static per-iteration cost of the
	// loop body; cheaper loops (initialization and the like) are left
	// to conventional protection.
	CostThreshold int
}

// DefaultCostThreshold matches "the number of instructions above
// threshold" filter in §4.
const DefaultCostThreshold = 24

// FindCandidates scans every non-internal function for candidate
// loops. It is a convenience wrapper over a throwaway analysis
// Manager; pipelines that already hold a Manager should call its
// Candidates method so the underlying analyses are cached.
func FindCandidates(m *ir.Module, opt Options) []Candidate {
	return NewManager(m).Candidates(opt)
}

func examineLoop(am *Manager, fi int, f *ir.Func, cfg *CFG, idom []int,
	loops []Loop, inner []int, li int, opt Options) (Candidate, bool) {
	m := am.mod

	l := &loops[li]
	// A unique preheader: exactly one predecessor of the header outside
	// the loop.
	pre := -1
	for _, p := range cfg.Preds[l.Header] {
		if l.Blocks[p] {
			continue
		}
		if pre != -1 {
			return Candidate{}, false
		}
		pre = p
	}
	if pre == -1 {
		return Candidate{}, false
	}
	// Header must end in a conditional branch with one in-loop and one
	// out-of-loop successor (the canonical counted-loop shape MiniC
	// lowering produces).
	ht := f.Blocks[l.Header].Terminator()
	if ht.Op != ir.OpCondBr {
		return Candidate{}, false
	}
	bodyEntry, exit := -1, -1
	for _, s := range ht.Blocks {
		if l.Blocks[s] {
			bodyEntry = s
		} else {
			exit = s
		}
	}
	if bodyEntry == -1 || exit == -1 || bodyEntry == l.Header || bodyEntry == l.Latch {
		return Candidate{}, false
	}
	iv, step, ok := findIV(f, l, ht)
	if !ok {
		return Candidate{}, false
	}
	// Region: loop blocks minus header and latch.
	region := map[int]bool{}
	for b := range l.Blocks {
		if b != l.Header && b != l.Latch {
			region[b] = true
		}
	}
	if len(region) == 0 {
		return Candidate{}, false
	}
	// Exactly one store in the region, located at this loop's level
	// (not inside a nested loop), executed every iteration (its block
	// dominates the latch), with a non-pointer value.
	storeBlock, storeIdx := -1, -1
	hasCall, hasInner := false, false
	for b := range region {
		if inner[b] != li {
			hasInner = hasInner || inner[b] != -1
		}
		for ii := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[ii]
			switch in.Op {
			case ir.OpStore:
				if storeBlock != -1 {
					return Candidate{}, false // multiple stores
				}
				storeBlock, storeIdx = b, ii
			case ir.OpCall:
				if !m.Funcs[in.Callee].Internal {
					hasCall = true
				}
			case ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
				return Candidate{}, false // already transformed
			}
		}
	}
	if storeBlock == -1 || inner[storeBlock] != li || !Dominates(idom, storeBlock, l.Latch) {
		return Candidate{}, false
	}
	st := &f.Blocks[storeBlock].Instrs[storeIdx]
	valueReg := st.Args[1]
	vt := f.TypeOf(valueReg)
	if vt != ir.Float && vt != ir.Int {
		return Candidate{}, false // pointer values are never approximated
	}
	// The value computation must contain an inner loop or a user call
	// (Figure 4's two patterns) and exceed the cost threshold.
	if !hasCall && !hasInner {
		return Candidate{}, false
	}
	cost := regionCost(m, f, region, loops, inner, loops[li].Depth+1, am.cost)
	if cost < opt.CostThreshold {
		return Candidate{}, false
	}
	// Upward-exposed live-ins of the region: the IV plus invariants.
	// Any other register that is both live into the body and defined
	// inside it is a loop-carried dependence prediction cannot handle.
	ue := UpwardExposed(f, cfg, region, bodyEntry)
	defs := DefsIn(f, region)
	if defs.Has(iv) {
		return Candidate{}, false // body rewrites the IV; recompute cannot rebuild it
	}
	var invs []ir.Reg
	for r := range ue {
		if r == iv {
			continue
		}
		if defs.Has(r) {
			return Candidate{}, false // loop-carried
		}
		invs = append(invs, r)
	}
	sort.Slice(invs, func(i, j int) bool { return invs[i] < invs[j] })

	return Candidate{
		Func: fi, LoopIdx: li, Preheader: pre, Header: l.Header, Latch: l.Latch,
		BodyEntry: bodyEntry, Region: region,
		IV: iv, Step: step,
		StoreBlock: storeBlock, StoreIdx: storeIdx,
		AddrReg: st.Args[0], ValueReg: valueReg, ValueFloat: vt == ir.Float,
		Invariants: invs, HasCall: hasCall, HasInnerLoop: hasInner, Cost: cost,
	}, true
}

// findIV recognizes the canonical induction variable: an Int register
// read by the header condition and updated in the latch by the pattern
// `t = add/sub iv, k; mov iv, t` with k a constant defined in the
// latch.
func findIV(f *ir.Func, l *Loop, ht *ir.Instr) (ir.Reg, int64, bool) {
	// Registers feeding the header condition.
	condRegs := RegSet{}
	cond := ht.Args[0]
	hdr := &f.Blocks[l.Header]
	for ii := len(hdr.Instrs) - 1; ii >= 0; ii-- {
		in := &hdr.Instrs[ii]
		if d := instrDefs(in); d == cond {
			for _, a := range in.Args {
				condRegs.Add(a)
			}
			break
		}
	}
	latch := &f.Blocks[l.Latch]
	constVal := map[ir.Reg]int64{}
	addOf := map[ir.Reg]*ir.Instr{}
	for ii := range latch.Instrs {
		in := &latch.Instrs[ii]
		switch in.Op {
		case ir.OpConstInt:
			constVal[in.Dst] = in.Imm
		case ir.OpAdd, ir.OpSub:
			addOf[in.Dst] = in
		case ir.OpMov:
			iv := in.Dst
			if !condRegs.Has(iv) || f.TypeOf(iv) != ir.Int {
				continue
			}
			add, ok := addOf[in.Args[0]]
			if !ok || add.Args[0] != iv {
				continue
			}
			k, isConst := constVal[add.Args[1]]
			if !isConst {
				continue
			}
			if add.Op == ir.OpSub {
				k = -k
			}
			if k == 0 {
				continue
			}
			return iv, k, true
		}
	}
	return ir.NoReg, 0, false
}
