package analysis

import "rskip/internal/ir"

// RegSet is a simple register set.
type RegSet map[ir.Reg]bool

// Add inserts r.
func (s RegSet) Add(r ir.Reg) { s[r] = true }

// Has reports membership.
func (s RegSet) Has(r ir.Reg) bool { return s[r] }

// Clone copies the set.
func (s RegSet) Clone() RegSet {
	n := make(RegSet, len(s))
	for r := range s {
		n[r] = true
	}
	return n
}

// instrDefs returns the register an instruction defines, or NoReg.
func instrDefs(in *ir.Instr) ir.Reg {
	if in.Op.HasDst() {
		return in.Dst
	}
	return ir.NoReg
}

// UpwardExposed computes the registers whose values flow into a block
// region from outside: a backward may-analysis over the region's
// blocks only, seeded empty at region exits. The result at the region
// entry is exactly the set of registers the region reads before
// writing — the live-ins a recompute slice must receive as arguments.
func UpwardExposed(f *ir.Func, c *CFG, region map[int]bool, entry int) RegSet {
	// Per-block gen (upward-exposed uses) and kill (defs).
	gen := map[int]RegSet{}
	kill := map[int]RegSet{}
	for b := range region {
		g, k := RegSet{}, RegSet{}
		for ii := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[ii]
			for _, a := range in.Args {
				if !k.Has(a) {
					g.Add(a)
				}
			}
			if d := instrDefs(in); d != ir.NoReg {
				k.Add(d)
			}
		}
		gen[b] = g
		kill[b] = k
	}
	// Iterate to fixpoint: liveIn[b] = gen[b] ∪ (∪ liveIn[s in region] − kill[b]).
	liveIn := map[int]RegSet{}
	for b := range region {
		liveIn[b] = gen[b].Clone()
	}
	changed := true
	for changed {
		changed = false
		for b := range region {
			cur := liveIn[b]
			for _, s := range c.Succs[b] {
				if !region[s] {
					continue
				}
				for r := range liveIn[s] {
					if !kill[b].Has(r) && !cur.Has(r) {
						cur.Add(r)
						changed = true
					}
				}
			}
		}
	}
	if li, ok := liveIn[entry]; ok {
		return li
	}
	return RegSet{}
}

// DefsIn returns all registers defined by instructions in the region.
func DefsIn(f *ir.Func, region map[int]bool) RegSet {
	defs := RegSet{}
	for b := range region {
		for ii := range f.Blocks[b].Instrs {
			if d := instrDefs(&f.Blocks[b].Instrs[ii]); d != ir.NoReg {
				defs.Add(d)
			}
		}
	}
	return defs
}
