package analysis

import (
	"testing"

	"rskip/internal/ir"
	"rskip/internal/lower"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return mod
}

const simpleLoop = `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 8; j = j + 1) {
			s = s + a[i + j];
		}
		out[i] = s;
	}
}
`

func TestCFGAndDominators(t *testing.T) {
	mod := compile(t, simpleLoop)
	f := mod.Funcs[0]
	cfg := BuildCFG(f)
	if len(cfg.Succs) != len(f.Blocks) {
		t.Fatalf("CFG size mismatch")
	}
	// Entry has no predecessors; every reachable block has idom.
	if len(cfg.Preds[0]) != 0 {
		t.Errorf("entry block has predecessors: %v", cfg.Preds[0])
	}
	idom := Dominators(cfg)
	rpo := cfg.ReversePostorder()
	if rpo[0] != 0 {
		t.Errorf("reverse postorder must start at entry, got %v", rpo)
	}
	for _, b := range rpo {
		if idom[b] == -1 {
			t.Errorf("reachable block %d has no idom", b)
		}
		if !Dominates(idom, 0, b) {
			t.Errorf("entry must dominate block %d", b)
		}
	}
}

func TestFindLoopsNesting(t *testing.T) {
	mod := compile(t, simpleLoop)
	f := mod.Funcs[0]
	cfg := BuildCFG(f)
	idom := Dominators(cfg)
	loops := FindLoops(cfg, idom)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var outer, inner *Loop
	for i := range loops {
		if loops[i].Depth == 0 {
			outer = &loops[i]
		} else {
			inner = &loops[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("nesting depths wrong: %+v", loops)
	}
	if inner.Parent == -1 {
		t.Error("inner loop has no parent")
	}
	if !outer.Blocks[inner.Header] {
		t.Error("outer loop must contain inner header")
	}
	if len(outer.Exits) == 0 || len(inner.Exits) == 0 {
		t.Error("loops must have exits")
	}
	im := InnermostLoop(len(f.Blocks), loops)
	if im[inner.Header] == im[outer.Header] {
		t.Error("innermost mapping does not distinguish loops")
	}
}

func TestUpwardExposed(t *testing.T) {
	mod := compile(t, simpleLoop)
	f := mod.Funcs[0]
	cfg := BuildCFG(f)
	idom := Dominators(cfg)
	loops := FindLoops(cfg, idom)
	// Outer loop region.
	var outer *Loop
	for i := range loops {
		if loops[i].Depth == 0 {
			outer = &loops[i]
		}
	}
	region := map[int]bool{}
	for b := range outer.Blocks {
		if b != outer.Header && b != outer.Latch {
			region[b] = true
		}
	}
	entry := -1
	ht := f.Blocks[outer.Header].Terminator()
	for _, s := range ht.Blocks {
		if region[s] {
			entry = s
		}
	}
	ue := UpwardExposed(f, cfg, region, entry)
	// The region reads a (r0), out (r1), and the IV; it must NOT
	// report s or j as upward-exposed (both are defined before use).
	if !ue.Has(0) || !ue.Has(1) {
		t.Errorf("array params not upward-exposed: %v", ue)
	}
	defs := DefsIn(f, region)
	for r := range ue {
		if defs.Has(r) && f.TypeOf(r) != ir.Int {
			t.Errorf("register %v both upward-exposed and defined (loop-carried?)", r)
		}
	}
}

func TestFindCandidatesSimple(t *testing.T) {
	mod := compile(t, simpleLoop)
	cands := FindCandidates(mod, Options{})
	if len(cands) != 1 {
		t.Fatalf("found %d candidates, want 1", len(cands))
	}
	c := cands[0]
	if !c.HasInnerLoop || c.HasCall {
		t.Errorf("pattern flags wrong: %+v", c)
	}
	if c.ValueFloat {
		t.Error("value should be int")
	}
	if c.Step != 1 {
		t.Errorf("step = %d, want 1", c.Step)
	}
	if len(c.Invariants) == 0 {
		t.Error("expected invariants (array bases, bound)")
	}
	if c.Cost < DefaultCostThreshold {
		t.Errorf("cost %d below threshold", c.Cost)
	}
}

func TestCandidateRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"initialization loop (too cheap)", `
void kernel(int a[], int n) {
	for (int i = 0; i < n; i = i + 1) { a[i] = 0; }
}`},
		{"no store", `
int kernel(int a[], int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) {
		for (int j = 0; j < n; j = j + 1) { s = s + a[j]; }
	}
	return s;
}`},
		{"two stores per iteration", `
void kernel(int a[], int b[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 8; j = j + 1) { s = s + a[i + j]; }
		a[i] = s;
		b[i] = s;
	}
}`},
		{"loop-carried accumulator", `
void kernel(int a[], int out[], int n) {
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		int s = acc;
		for (int j = 0; j < 8; j = j + 1) { s = s + a[i + j]; }
		acc = s;
		out[i] = s;
	}
}`},
		{"conditional store", `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 8; j = j + 1) { s = s + a[i + j]; }
		if (s > 0) { out[i] = s; }
	}
}`},
		{"cheap body without inner loop or call", `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) { out[i] = a[i] * 2 + 1; }
}`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			mod := compile(t, tt.src)
			if cands := FindCandidates(mod, Options{}); len(cands) != 0 {
				t.Errorf("expected no candidates, got %d: %+v", len(cands), cands[0])
			}
		})
	}
}

func TestCandidateCallPattern(t *testing.T) {
	mod := compile(t, `
float price(float x, float y) {
	float a = sqrt(x) + exp(y);
	float b = log(x + 1.0) * y;
	return a * b + a / (b + 1.0);
}
void kernel(float in1[], float in2[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		out[i] = price(in1[i], in2[i]);
	}
}`)
	cands := FindCandidates(mod, Options{})
	if len(cands) != 1 {
		t.Fatalf("found %d candidates, want 1", len(cands))
	}
	if !cands[0].HasCall {
		t.Error("should detect the user-call pattern (Figure 4a)")
	}
	if !cands[0].ValueFloat {
		t.Error("value should be float")
	}
}

func TestFuncCostOrdering(t *testing.T) {
	mod := compile(t, `
int cheap(int x) { return x + 1; }
int expensive(int x) {
	int s = 0;
	for (int i = 0; i < x; i = i + 1) {
		for (int j = 0; j < x; j = j + 1) { s = s + i * j; }
	}
	return s;
}`)
	cheap := FuncCost(mod, mod.FuncByName("cheap"))
	exp := FuncCost(mod, mod.FuncByName("expensive"))
	if cheap >= exp {
		t.Errorf("cost(cheap)=%d should be < cost(expensive)=%d", cheap, exp)
	}
}

func TestDominatesBasics(t *testing.T) {
	// Diamond: 0 -> 1,2 -> 3.
	b := ir.NewBuilder("d", nil, ir.Void)
	one := b.NewBlock("a")
	two := b.NewBlock("b")
	three := b.NewBlock("join")
	c := b.ConstInt(1)
	b.CondBr(c, one, two)
	b.SetBlock(one)
	b.Br(three)
	b.SetBlock(two)
	b.Br(three)
	b.SetBlock(three)
	b.Ret(ir.NoReg)
	cfg := BuildCFG(b.F)
	idom := Dominators(cfg)
	if !Dominates(idom, 0, 3) {
		t.Error("entry must dominate join")
	}
	if Dominates(idom, 1, 3) || Dominates(idom, 2, 3) {
		t.Error("diamond arms must not dominate join")
	}
	if idom[3] != 0 {
		t.Errorf("idom(join) = %d, want 0", idom[3])
	}
}
