package analysis_test

import (
	"reflect"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/lower"
)

const managerSrc = `
int helper(int x) {
	return x * 3 + 1;
}
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int acc = 0;
		for (int j = 0; j < 4; j = j + 1) {
			acc = acc + helper(a[i + j]);
		}
		out[i] = acc;
	}
}
`

func TestManagerCachesFuncAnalyses(t *testing.T) {
	m, err := lower.Compile("mgr", managerSrc)
	if err != nil {
		t.Fatal(err)
	}
	am := analysis.NewManager(m)
	if am.Module() != m {
		t.Fatal("Module() does not return the bound module")
	}
	fa1 := am.Func(0)
	fa2 := am.Func(0)
	if fa1 != fa2 {
		t.Error("second Func() call did not return the cached bundle")
	}
	st := am.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats after one miss + one hit: %+v", st)
	}
	// Cached results must match a direct computation.
	f := m.Funcs[0]
	cfg := analysis.BuildCFG(f)
	idom := analysis.Dominators(cfg)
	if !reflect.DeepEqual(fa1.Idom, idom) {
		t.Error("cached dominators differ from direct computation")
	}
	if !reflect.DeepEqual(fa1.Loops, analysis.FindLoops(cfg, idom)) {
		t.Error("cached loops differ from direct computation")
	}
}

func TestManagerCandidatesCacheAndSeed(t *testing.T) {
	m, err := lower.Compile("mgr", managerSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := analysis.Options{}
	want := analysis.FindCandidates(m, opt)
	if len(want) == 0 {
		t.Fatal("test kernel has no candidates")
	}

	am := analysis.NewManager(m)
	got := am.Candidates(opt)
	if !reflect.DeepEqual(got, want) {
		t.Error("manager candidates differ from FindCandidates")
	}
	hitsBefore := am.Stats().Hits
	if got2 := am.Candidates(opt); !reflect.DeepEqual(got2, got) {
		t.Error("cached candidates differ")
	}
	if am.Stats().Hits <= hitsBefore {
		t.Error("second Candidates() call did not hit the cache")
	}
	// A zero threshold and the explicit default are the same cache key.
	if am2 := analysis.NewManager(m); true {
		am2.SeedCandidates(opt, want)
		if am2.Stats().Misses != 0 {
			t.Fatal("seeding should not compute anything")
		}
		got3 := am2.Candidates(analysis.Options{CostThreshold: analysis.DefaultCostThreshold})
		if !reflect.DeepEqual(got3, want) {
			t.Error("seeded candidates not served")
		}
		if am2.Stats().Hits == 0 {
			t.Error("seeded Candidates() call did not count as a hit")
		}
	}
}

func TestManagerInvalidation(t *testing.T) {
	m, err := lower.Compile("mgr", managerSrc)
	if err != nil {
		t.Fatal(err)
	}
	am := analysis.NewManager(m)
	opt := analysis.Options{}
	am.Candidates(opt)
	cost := am.FuncCost(0)
	if cost2 := am.FuncCost(0); cost2 != cost {
		t.Errorf("memoized FuncCost changed: %d != %d", cost2, cost)
	}
	if direct := analysis.FuncCost(m, 0); direct != cost {
		t.Errorf("manager FuncCost %d != direct %d", cost, direct)
	}

	gen := am.Generation()
	am.Invalidate(0)
	if am.Generation() != gen+1 {
		t.Error("Invalidate did not bump the generation")
	}
	misses := am.Stats().Misses
	am.Candidates(opt)
	if am.Stats().Misses <= misses {
		t.Error("candidates survived Invalidate")
	}

	am.Func(0)
	gen = am.Generation()
	am.InvalidateAll()
	if am.Generation() != gen+1 {
		t.Error("InvalidateAll did not bump the generation")
	}
	misses = am.Stats().Misses
	am.Func(0)
	if am.Stats().Misses <= misses {
		t.Error("function analyses survived InvalidateAll")
	}
}
