package analysis

import "sort"

// Loop is a natural loop: a back edge latch->header plus every block
// that can reach the latch without passing through the header.
type Loop struct {
	Header int
	Latch  int
	Blocks map[int]bool
	// Exits are blocks outside the loop that are successors of loop
	// blocks.
	Exits []int
	// Parent indexes the innermost enclosing loop in the FindLoops
	// result, or -1.
	Parent int
	Depth  int
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool { return l.Blocks[b] }

// SortedBlocks returns the loop's blocks in ascending order for
// deterministic iteration.
func (l *Loop) SortedBlocks() []int {
	out := make([]int, 0, len(l.Blocks))
	for b := range l.Blocks {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// FindLoops detects all natural loops, computing nesting relations.
// Loops sharing a header are merged (irrelevant for MiniC lowering,
// which gives each loop a unique header).
func FindLoops(c *CFG, idom []int) []Loop {
	byHeader := map[int]*Loop{}
	for b := range c.Succs {
		for _, s := range c.Succs[b] {
			if Dominates(idom, s, b) { // back edge b -> s
				l, ok := byHeader[s]
				if !ok {
					l = &Loop{Header: s, Latch: b, Blocks: map[int]bool{s: true}, Parent: -1}
					byHeader[s] = l
				}
				l.Latch = b
				collectLoopBody(c, l, b)
			}
		}
	}
	loops := make([]Loop, 0, len(byHeader))
	var headers []int
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, h := range headers {
		loops = append(loops, *byHeader[h])
	}
	// Exits.
	for i := range loops {
		l := &loops[i]
		seen := map[int]bool{}
		for b := range l.Blocks {
			for _, s := range c.Succs[b] {
				if !l.Blocks[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		sort.Ints(l.Exits)
	}
	// Nesting: parent = smallest strictly-enclosing loop.
	for i := range loops {
		best := -1
		for j := range loops {
			if i == j {
				continue
			}
			if loops[j].Blocks[loops[i].Header] && len(loops[j].Blocks) > len(loops[i].Blocks) {
				if best == -1 || len(loops[j].Blocks) < len(loops[best].Blocks) {
					best = j
				}
			}
		}
		loops[i].Parent = best
	}
	for i := range loops {
		d := 0
		for p := loops[i].Parent; p != -1; p = loops[p].Parent {
			d++
		}
		loops[i].Depth = d
	}
	return loops
}

func collectLoopBody(c *CFG, l *Loop, from int) {
	if l.Blocks[from] {
		return
	}
	l.Blocks[from] = true
	for _, p := range c.Preds[from] {
		collectLoopBody(c, l, p)
	}
}

// InnermostLoop maps each block to the index of its innermost
// containing loop in loops, or -1.
func InnermostLoop(nblocks int, loops []Loop) []int {
	inner := make([]int, nblocks)
	for i := range inner {
		inner[i] = -1
	}
	for b := 0; b < nblocks; b++ {
		for i := range loops {
			if !loops[i].Blocks[b] {
				continue
			}
			if inner[b] == -1 || len(loops[i].Blocks) < len(loops[inner[b]].Blocks) {
				inner[b] = i
			}
		}
	}
	return inner
}
