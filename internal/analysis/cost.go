package analysis

import "rskip/internal/ir"

// Static cost model. Costs approximate dynamic-instruction weight:
// loop bodies are scaled by an assumed trip count, calls by the
// callee's cost. The candidate detector uses these to pick only
// computations expensive enough that skipping their re-computation
// pays for the prediction (the paper filters out low-overhead loops
// such as initialization).

// assumedTrip is the multiplier applied per loop nesting level when no
// trip count is statically known.
const assumedTrip = 8

// opCost returns the static weight of a single operation.
func opCost(op ir.Op) int {
	switch op {
	case ir.OpDiv, ir.OpRem, ir.OpFDiv:
		return 8
	case ir.OpSqrt:
		return 12
	case ir.OpExp, ir.OpLog, ir.OpPow:
		return 16
	case ir.OpFMul:
		return 3
	case ir.OpMul, ir.OpFAdd, ir.OpFSub:
		return 2
	case ir.OpLoad:
		return 2
	case ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
		return 0
	}
	return 1
}

// FuncCost estimates the cost of one call to function fi, memoizing
// across the module. Recursion is cut off with a conservative default.
func FuncCost(m *ir.Module, fi int) int {
	memo := make(map[int]int)
	return funcCost(m, fi, memo, map[int]bool{})
}

func funcCost(m *ir.Module, fi int, memo map[int]int, onStack map[int]bool) int {
	if c, ok := memo[fi]; ok {
		return c
	}
	if onStack[fi] {
		return 64 // recursive: conservative flat weight
	}
	onStack[fi] = true
	defer delete(onStack, fi)

	f := m.Funcs[fi]
	c := BuildCFG(f)
	idom := Dominators(c)
	loops := FindLoops(c, idom)
	inner := InnermostLoop(len(f.Blocks), loops)

	depthOf := func(b int) int {
		if inner[b] == -1 {
			return 0
		}
		return loops[inner[b]].Depth + 1
	}
	total := 0
	for bi := range f.Blocks {
		w := 1
		for d := 0; d < depthOf(bi); d++ {
			w *= assumedTrip
		}
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			ic := opCost(in.Op)
			if in.Op == ir.OpCall {
				ic = 2 + funcCost(m, in.Callee, memo, onStack)
			}
			total += w * ic
		}
	}
	memo[fi] = total
	return total
}

// RegionCost estimates the cost of one traversal of a block region
// inside function f (one loop iteration when the region is a loop
// body). Inner loops inside the region are scaled by assumedTrip per
// extra nesting level relative to baseDepth.
func RegionCost(m *ir.Module, f *ir.Func, region map[int]bool, loops []Loop, inner []int, baseDepth int) int {
	return regionCost(m, f, region, loops, inner, baseDepth, make(map[int]int))
}

// regionCost is RegionCost over a caller-supplied call-cost memo, so a
// Manager can share one memo across every region it prices.
func regionCost(m *ir.Module, f *ir.Func, region map[int]bool, loops []Loop, inner []int, baseDepth int, memo map[int]int) int {
	total := 0
	for b := range region {
		d := 0
		if inner[b] != -1 {
			d = loops[inner[b]].Depth + 1
		}
		extra := d - baseDepth
		if extra < 0 {
			extra = 0
		}
		w := 1
		for i := 0; i < extra; i++ {
			w *= assumedTrip
		}
		for ii := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[ii]
			ic := opCost(in.Op)
			if in.Op == ir.OpCall {
				ic = 2 + funcCost(m, in.Callee, memo, map[int]bool{})
			}
			total += w * ic
		}
	}
	return total
}
