package analysis

import "rskip/internal/ir"

// FuncAnalyses bundles the per-function structural analyses the
// compile pipeline keeps re-deriving: the control-flow graph, the
// immediate-dominator array, the natural-loop forest, and the
// block→innermost-loop map. A bundle is valid for as long as the
// function's block structure is unchanged; instruction insertions that
// leave terminators alone (the protection transforms' only mutation
// inside a fixpoint step) do not invalidate it.
type FuncAnalyses struct {
	CFG   *CFG
	Idom  []int
	Loops []Loop
	Inner []int
}

// Manager caches analyses for one module across the passes of a
// compile pipeline. Per-function bundles, the module-level function
// cost memo, and candidate-detection results are computed on first
// use and served from the cache until a pass reports a mutation
// through Invalidate/InvalidateAll, which bumps the generation
// counter. A Manager is not safe for concurrent use; each pipeline
// (goroutine) owns its own.
type Manager struct {
	mod *ir.Module
	gen uint64

	fns   map[int]*FuncAnalyses
	cost  map[int]int         // shared FuncCost memo
	cands map[int][]Candidate // keyed by normalized cost threshold

	hits, misses uint64
}

// NewManager returns an empty cache bound to the module.
func NewManager(m *ir.Module) *Manager {
	return &Manager{
		mod:   m,
		fns:   map[int]*FuncAnalyses{},
		cost:  map[int]int{},
		cands: map[int][]Candidate{},
	}
}

// Module returns the module the manager is bound to.
func (am *Manager) Module() *ir.Module { return am.mod }

// Generation counts invalidations; it distinguishes analysis results
// computed before and after a mutating pass.
func (am *Manager) Generation() uint64 { return am.gen }

// ManagerStats reports cache effectiveness.
type ManagerStats struct {
	Hits, Misses uint64
}

// Stats returns the cumulative hit/miss counts across all cached
// analysis kinds.
func (am *Manager) Stats() ManagerStats {
	return ManagerStats{Hits: am.hits, Misses: am.misses}
}

// Func returns the cached analysis bundle for function fi, computing
// it on first use.
func (am *Manager) Func(fi int) *FuncAnalyses {
	if fa, ok := am.fns[fi]; ok {
		am.hits++
		return fa
	}
	am.misses++
	f := am.mod.Funcs[fi]
	cfg := BuildCFG(f)
	idom := Dominators(cfg)
	loops := FindLoops(cfg, idom)
	fa := &FuncAnalyses{
		CFG:   cfg,
		Idom:  idom,
		Loops: loops,
		Inner: InnermostLoop(len(f.Blocks), loops),
	}
	am.fns[fi] = fa
	return fa
}

// FuncCost returns the memoized static cost of one call to function
// fi. The memo is shared across the whole pipeline and cleared on any
// invalidation (costs are transitive through call chains).
func (am *Manager) FuncCost(fi int) int {
	if c, ok := am.cost[fi]; ok {
		am.hits++
		return c
	}
	am.misses++
	return funcCost(am.mod, fi, am.cost, map[int]bool{})
}

// Candidates returns the candidate loops for the module at the given
// options, served from the cache when the module is unchanged since
// the last detection at the same threshold.
func (am *Manager) Candidates(opt Options) []Candidate {
	key := normalizeThreshold(opt)
	if cs, ok := am.cands[key]; ok {
		am.hits++
		return cs
	}
	am.misses++
	opt.CostThreshold = key
	var out []Candidate
	for fi, f := range am.mod.Funcs {
		if f.Internal {
			continue
		}
		fa := am.Func(fi)
		for li := range fa.Loops {
			if c, ok := examineLoop(am, fi, f, fa.CFG, fa.Idom, fa.Loops, fa.Inner, li, opt); ok {
				out = append(out, c)
			}
		}
	}
	am.cands[key] = out
	return out
}

// SeedCandidates pre-populates the candidate cache with results
// computed on a structurally identical module — a Clone shares block
// and register indexes with its source, so candidates found on one
// are valid on the other. The build pipeline uses this to fold the
// detection pass it already ran on the unprotected module into the
// RSkip clone's fixpoint instead of recomputing it.
func (am *Manager) SeedCandidates(opt Options, cands []Candidate) {
	am.cands[normalizeThreshold(opt)] = cands
}

func normalizeThreshold(opt Options) int {
	if opt.CostThreshold == 0 {
		return DefaultCostThreshold
	}
	return opt.CostThreshold
}

// Invalidate drops everything that may depend on function fi: its
// analysis bundle, the whole cost memo (callers embed callee costs),
// and all cached candidate sets. Newly appended functions need no
// invalidation — they simply miss on first use.
func (am *Manager) Invalidate(fi int) {
	delete(am.fns, fi)
	am.dropModuleLevel()
}

// InvalidateAll drops every cached result; a pass that mutates
// arbitrary functions (duplication, CFC, optimization) must call it.
func (am *Manager) InvalidateAll() {
	am.fns = map[int]*FuncAnalyses{}
	am.dropModuleLevel()
}

func (am *Manager) dropModuleLevel() {
	am.cost = map[int]int{}
	am.cands = map[int][]Candidate{}
	am.gen++
}
