// Package analysis provides the static analyses RSkip's compiler
// needs: control-flow graphs, dominators, natural-loop detection,
// liveness/upward-exposed-use computation, induction-variable
// recognition, a static cost model, and — on top of those — detection
// of the prediction-based-protection candidate loops the paper
// targets (a loop whose per-iteration value computation is an inner
// loop or an expensive user call feeding a single store).
package analysis

import "rskip/internal/ir"

// CFG holds per-block successor and predecessor lists for a function.
type CFG struct {
	Succs [][]int
	Preds [][]int
}

// BuildCFG derives the control-flow graph from block terminators.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{Succs: make([][]int, n), Preds: make([][]int, n)}
	for bi := range f.Blocks {
		t := f.Blocks[bi].Terminator()
		for _, s := range t.Blocks {
			c.Succs[bi] = append(c.Succs[bi], s)
			c.Preds[s] = append(c.Preds[s], bi)
		}
	}
	return c
}

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder.
func (c *CFG) ReversePostorder() []int {
	n := len(c.Succs)
	seen := make([]bool, n)
	var order []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range c.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(0)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Dominators computes the immediate-dominator array using the
// Cooper-Harvey-Kennedy iterative algorithm. idom[0] == 0; unreachable
// blocks get idom -1.
func Dominators(c *CFG) []int {
	rpo := c.ReversePostorder()
	pos := make([]int, len(c.Succs))
	for i := range pos {
		pos[i] = -1
	}
	for i, b := range rpo {
		pos[b] = i
	}
	idom := make([]int, len(c.Succs))
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if pos[p] < 0 || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom.
// Unreachable blocks are dominated by nothing.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = idom[b]
		if b == -1 {
			return false
		}
	}
}
