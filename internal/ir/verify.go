package ir

import "fmt"

// Verify checks structural invariants of the module: every block ends
// in exactly one terminator, register and block references are in
// range, operand counts match opcodes, and register types are
// consistent with operations. Transforms verify their output in tests.
func Verify(m *Module) error {
	for fi, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("func %d (%s): %w", fi, f.Name, err)
		}
	}
	for _, li := range m.Loops {
		if li.Func < 0 || li.Func >= len(m.Funcs) {
			return fmt.Errorf("loop %d: bad func index %d", li.ID, li.Func)
		}
		if li.RecomputeFn < 0 || li.RecomputeFn >= len(m.Funcs) {
			return fmt.Errorf("loop %d: bad recompute index %d", li.ID, li.RecomputeFn)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if len(f.RegType) != f.NumRegs {
		return fmt.Errorf("RegType len %d != NumRegs %d", len(f.RegType), f.NumRegs)
	}
	if f.NumRegs < len(f.Params) {
		return fmt.Errorf("fewer registers than parameters")
	}
	for i, p := range f.Params {
		if f.RegType[i] != p.Type {
			return fmt.Errorf("param %d type %s != reg type %s", i, p.Type, f.RegType[i])
		}
	}
	for bi := range f.Blocks {
		blk := &f.Blocks[bi]
		if len(blk.Instrs) == 0 {
			return fmt.Errorf("block %d (%s): empty", bi, blk.Name)
		}
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			last := ii == len(blk.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("block %d (%s) instr %d (%s): terminator placement",
					bi, blk.Name, ii, in.Op)
			}
			if err := verifyInstr(m, f, in); err != nil {
				return fmt.Errorf("block %d (%s) instr %d (%s): %w",
					bi, blk.Name, ii, in.Op, err)
			}
		}
	}
	return nil
}

func verifyInstr(m *Module, f *Func, in *Instr) error {
	checkReg := func(r Reg) error {
		if r == NoReg || int(r) >= f.NumRegs || r < NoReg {
			return fmt.Errorf("bad register %v (NumRegs=%d)", r, f.NumRegs)
		}
		return nil
	}
	for _, a := range in.Args {
		if err := checkReg(a); err != nil {
			return err
		}
	}
	for _, t := range in.Blocks {
		if t < 0 || t >= len(f.Blocks) {
			return fmt.Errorf("bad block target %d", t)
		}
	}
	if in.Op.HasDst() && in.Dst != NoReg {
		if err := checkReg(in.Dst); err != nil {
			return err
		}
	}
	wantArgs := -1 // -1: variable
	switch in.Op {
	case OpConstInt, OpConstFloat, OpAlloca:
		wantArgs = 0
	case OpMov, OpNeg, OpFNeg, OpIToF, OpFToI, OpLoad,
		OpSqrt, OpExp, OpLog, OpFAbs, OpFloor:
		wantArgs = 1
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpPow, OpFMin, OpFMax,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
		OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe,
		OpStore, OpCheck2:
		wantArgs = 2
	case OpVote3:
		wantArgs = 3
	case OpCondBr:
		wantArgs = 1
		if len(in.Blocks) != 2 {
			return fmt.Errorf("condbr needs 2 targets, has %d", len(in.Blocks))
		}
	case OpBr:
		wantArgs = 0
		if len(in.Blocks) != 1 {
			return fmt.Errorf("br needs 1 target, has %d", len(in.Blocks))
		}
	case OpRet:
		if f.Ret == Void && len(in.Args) != 0 {
			return fmt.Errorf("void return carries a value")
		}
		if f.Ret != Void && len(in.Args) != 1 {
			return fmt.Errorf("non-void return missing value")
		}
	case OpCall:
		if in.Callee < 0 || in.Callee >= len(m.Funcs) {
			return fmt.Errorf("bad callee %d", in.Callee)
		}
		callee := m.Funcs[in.Callee]
		if len(in.Args) != len(callee.Params) {
			return fmt.Errorf("call %s: %d args, want %d",
				callee.Name, len(in.Args), len(callee.Params))
		}
		for i, a := range in.Args {
			if f.TypeOf(a) != callee.Params[i].Type {
				return fmt.Errorf("call %s arg %d: type %s, want %s",
					callee.Name, i, f.TypeOf(a), callee.Params[i].Type)
			}
		}
		if callee.Ret == Void && in.Dst != NoReg {
			return fmt.Errorf("call %s: void callee with destination", callee.Name)
		}
	case OpRTObserve:
		wantArgs = 3
	case OpRTLoopEnter, OpRTLoopExit:
		// variable invariant live-ins / none
	default:
	}
	if wantArgs >= 0 && len(in.Args) != wantArgs {
		return fmt.Errorf("%d args, want %d", len(in.Args), wantArgs)
	}
	// Spot type checks for the most error-prone ops.
	switch in.Op {
	case OpLoad:
		if f.TypeOf(in.Args[0]) != Ptr {
			return fmt.Errorf("load address is %s, want ptr", f.TypeOf(in.Args[0]))
		}
	case OpStore:
		if f.TypeOf(in.Args[0]) != Ptr {
			return fmt.Errorf("store address is %s, want ptr", f.TypeOf(in.Args[0]))
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		for _, a := range in.Args {
			if f.TypeOf(a) != Float {
				return fmt.Errorf("float op on %s operand", f.TypeOf(a))
			}
		}
	case OpCondBr:
		if f.TypeOf(in.Args[0]) != Int {
			return fmt.Errorf("condbr condition is %s, want int", f.TypeOf(in.Args[0]))
		}
	}
	return nil
}
