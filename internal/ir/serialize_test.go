package ir

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleModule() *Module {
	b := NewBuilder("kernel", []Param{
		{Name: "a", Type: Ptr}, {Name: "n", Type: Int},
	}, Float)
	c := b.ConstFloat(1.5)
	x := b.Binop(OpFAdd, Float, c, c)
	addr := b.Binop(OpAdd, Ptr, 0, 1)
	v := b.Load(Float, addr)
	y := b.Binop(OpFMul, Float, x, v)
	done := b.NewBlock("done")
	cond := b.Binop(OpGt, Int, 1, 1)
	b.CondBr(cond, done, done)
	b.SetBlock(done)
	b.Ret(y)
	f := b.F
	f.Blocks[0].Instrs[1].Tag = TagValue

	return &Module{
		Name:  "sample module", // space exercises sanitization
		Funcs: []*Func{f},
		Loops: []LoopInfo{{
			ID: 0, Func: 0, Name: "kernel.loop@b1", RecomputeFn: 0,
			SelfRead: true, MemoFn: -1, NumInvariants: 2, ValueIsFloat: true,
			HasAROverride: true, AROverride: 0.35,
		}},
		Pragmas: []ARPragma{{Func: 0, Header: 1, AR: 0.35}},
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := sampleModule()
	var buf bytes.Buffer
	if err := m.MarshalText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalText(&buf)
	if err != nil {
		t.Fatalf("UnmarshalText: %v\n%s", err, buf.String())
	}
	if got.Name != "sample_module" {
		t.Errorf("name = %q", got.Name)
	}
	if !reflect.DeepEqual(got.Loops, m.Loops) {
		t.Errorf("loops mismatch:\n%+v\n%+v", got.Loops, m.Loops)
	}
	if !reflect.DeepEqual(got.Pragmas, m.Pragmas) {
		t.Errorf("pragmas mismatch")
	}
	if len(got.Funcs) != 1 {
		t.Fatalf("func count %d", len(got.Funcs))
	}
	gf, mf := got.Funcs[0], m.Funcs[0]
	if gf.Name != mf.Name || gf.Ret != mf.Ret || gf.NumRegs != mf.NumRegs {
		t.Errorf("func header mismatch: %+v vs %+v", gf, mf)
	}
	if !reflect.DeepEqual(gf.RegType, mf.RegType) {
		t.Errorf("regtypes mismatch")
	}
	if len(gf.Blocks) != len(mf.Blocks) {
		t.Fatalf("block count mismatch")
	}
	for bi := range mf.Blocks {
		if len(gf.Blocks[bi].Instrs) != len(mf.Blocks[bi].Instrs) {
			t.Fatalf("block %d instr count mismatch", bi)
		}
		for ii := range mf.Blocks[bi].Instrs {
			a, b := gf.Blocks[bi].Instrs[ii], mf.Blocks[bi].Instrs[ii]
			// Args/Blocks nil-vs-empty distinction is irrelevant.
			if a.Op != b.Op || a.Dst != b.Dst || a.Imm != b.Imm ||
				a.FImm != b.FImm || a.Callee != b.Callee || a.Tag != b.Tag ||
				!reflect.DeepEqual(append([]Reg{}, a.Args...), append([]Reg{}, b.Args...)) ||
				!reflect.DeepEqual(append([]int{}, a.Blocks...), append([]int{}, b.Blocks...)) {
				t.Fatalf("instr %d/%d mismatch:\n%+v\n%+v", bi, ii, a, b)
			}
		}
	}
}

func TestSerializeSecondRoundIdentical(t *testing.T) {
	m := sampleModule()
	var b1, b2 bytes.Buffer
	if err := m.MarshalText(&b1); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalText(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.MarshalText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("serialization is not a fixed point")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"rir 2\nmodule x\n",
		"rir 1\n",
		"rir 1\nmodule x\nfunc f 1 false 0\n", // unterminated func
		"rir 1\nmodule x\nblurb\n",
		"rir 1\nmodule x\nfunc f 1 false 1\nregtypes ii\nendfunc\n", // regtypes length
		"rir 1\nmodule x\nfunc f 1 false 0\nregtypes \nendfunc\n",
		"rir 1\nmodule x\ni add 0 0 0 0 0 0 0\n", // instr outside block
		// Invalid module (block without terminator) must fail Verify.
		"rir 1\nmodule x\nfunc f 0 false 1\nregtypes i\nblock entry\ni const 0 0 0 5 0 0 0\nendfunc\n",
	}
	for _, src := range cases {
		if _, err := UnmarshalText(strings.NewReader(src)); err == nil {
			t.Errorf("UnmarshalText(%q): expected error", src)
		}
	}
}

func TestUnmarshalUnknownOpcode(t *testing.T) {
	src := "rir 1\nmodule x\nfunc f 0 false 0\nregtypes \nblock b\ni frobnicate -1 0 0 0 0 0 0\nendfunc\n"
	if _, err := UnmarshalText(strings.NewReader(src)); err == nil ||
		!strings.Contains(err.Error(), "unknown opcode") {
		t.Errorf("got %v", err)
	}
}
