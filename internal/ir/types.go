// Package ir defines the compiler intermediate representation used by
// RSkip: a typed register machine with basic blocks, functions and
// modules. All protection transforms (SWIFT, SWIFT-R, prediction-based
// protection) are IR-to-IR rewrites, and the machine package executes
// the IR directly.
//
// The IR deliberately avoids SSA form: virtual registers are mutable,
// which keeps the duplication/triplication transforms simple (a shadow
// copy of a register is itself a register) and matches how the original
// RSkip prototype operates on machine-level values.
package ir

import "fmt"

// Type is the type of a register or function result.
type Type uint8

// Register and value types. Pointers are machine words holding a word
// address into the simulated memory; keeping them distinct from Int
// lets the analysis separate address computation from value
// computation, which the paper protects conventionally.
const (
	Void  Type = iota
	Int        // 64-bit signed integer
	Float      // 64-bit IEEE-754 float
	Ptr        // word address into simulated memory
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case Int:
		return "int"
	case Float:
		return "float"
	case Ptr:
		return "ptr"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Reg is a virtual register index local to a function. The special
// value NoReg marks "no destination".
type Reg int32

// NoReg marks an absent register operand (e.g. the destination of a
// store, or a void call result).
const NoReg Reg = -1

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", int32(r))
}
