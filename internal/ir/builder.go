package ir

import "fmt"

// Builder incrementally constructs a Func. The frontend lowering and
// the protection transforms both use it.
type Builder struct {
	F   *Func
	cur int // current block index
}

// NewBuilder returns a builder for a fresh function with the given
// signature. Parameters are bound to registers r0..rN-1 and an entry
// block is created and made current.
func NewBuilder(name string, params []Param, ret Type) *Builder {
	f := &Func{Name: name, Params: params, Ret: ret}
	for _, p := range params {
		f.NewReg(p.Type)
	}
	b := &Builder{F: f}
	b.cur = b.NewBlock("entry")
	return b
}

// NewBlock appends an empty block and returns its index. The current
// block is unchanged.
func (b *Builder) NewBlock(name string) int {
	b.F.Blocks = append(b.F.Blocks, Block{Name: name})
	return len(b.F.Blocks) - 1
}

// SetBlock makes block idx the insertion point.
func (b *Builder) SetBlock(idx int) { b.cur = idx }

// Block returns the current insertion block index.
func (b *Builder) Block() int { return b.cur }

// emit appends an instruction to the current block.
func (b *Builder) emit(in Instr) {
	blk := &b.F.Blocks[b.cur]
	if n := len(blk.Instrs); n > 0 && blk.Instrs[n-1].Op.IsTerminator() {
		panic(fmt.Sprintf("ir: emit %s after terminator in block %s of %s",
			in.Op, blk.Name, b.F.Name))
	}
	blk.Instrs = append(blk.Instrs, in)
}

// ConstInt emits an integer (or pointer) constant.
func (b *Builder) ConstInt(v int64) Reg {
	dst := b.F.NewReg(Int)
	b.emit(Instr{Op: OpConstInt, Dst: dst, Imm: v})
	return dst
}

// ConstFloat emits a float constant.
func (b *Builder) ConstFloat(v float64) Reg {
	dst := b.F.NewReg(Float)
	b.emit(Instr{Op: OpConstFloat, Dst: dst, FImm: v})
	return dst
}

// Unop emits a one-operand value instruction.
func (b *Builder) Unop(op Op, t Type, a Reg) Reg {
	dst := b.F.NewReg(t)
	b.emit(Instr{Op: op, Dst: dst, Args: []Reg{a}})
	return dst
}

// Binop emits a two-operand value instruction.
func (b *Builder) Binop(op Op, t Type, a, c Reg) Reg {
	dst := b.F.NewReg(t)
	b.emit(Instr{Op: op, Dst: dst, Args: []Reg{a, c}})
	return dst
}

// Mov emits dst = src into an existing register (used for assignments
// to named variables).
func (b *Builder) Mov(dst, src Reg) {
	b.emit(Instr{Op: OpMov, Dst: dst, Args: []Reg{src}})
}

// Load emits dst = mem[addr].
func (b *Builder) Load(t Type, addr Reg) Reg {
	dst := b.F.NewReg(t)
	b.emit(Instr{Op: OpLoad, Dst: dst, Args: []Reg{addr}})
	return dst
}

// Store emits mem[addr] = val.
func (b *Builder) Store(addr, val Reg) {
	b.emit(Instr{Op: OpStore, Args: []Reg{addr, val}})
}

// Alloca emits a stack allocation of size words.
func (b *Builder) Alloca(size int64) Reg {
	dst := b.F.NewReg(Ptr)
	b.emit(Instr{Op: OpAlloca, Dst: dst, Imm: size})
	return dst
}

// Call emits a function call; dst is NoReg for void callees.
func (b *Builder) Call(callee int, ret Type, args ...Reg) Reg {
	dst := NoReg
	if ret != Void {
		dst = b.F.NewReg(ret)
	}
	b.emit(Instr{Op: OpCall, Dst: dst, Args: args, Callee: callee})
	return dst
}

// Br emits an unconditional branch.
func (b *Builder) Br(target int) {
	b.emit(Instr{Op: OpBr, Blocks: []int{target}})
}

// CondBr branches to then when cond != 0, otherwise to els.
func (b *Builder) CondBr(cond Reg, then, els int) {
	b.emit(Instr{Op: OpCondBr, Args: []Reg{cond}, Blocks: []int{then, els}})
}

// Ret emits a return; pass NoReg for void.
func (b *Builder) Ret(v Reg) {
	in := Instr{Op: OpRet}
	if v != NoReg {
		in.Args = []Reg{v}
	}
	b.emit(in)
}

// Raw appends a pre-built instruction; transforms use it for
// protection primitives and runtime hooks.
func (b *Builder) Raw(in Instr) { b.emit(in) }

// Terminated reports whether the current block already ends in a
// terminator, meaning further emission must pick a new block.
func (b *Builder) Terminated() bool {
	blk := &b.F.Blocks[b.cur]
	n := len(blk.Instrs)
	return n > 0 && blk.Instrs[n-1].Op.IsTerminator()
}
