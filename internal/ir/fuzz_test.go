package ir

import (
	"bytes"
	"strings"
	"testing"
)

// seedModule builds a small valid module exercising most record kinds
// (pragma, loop, params, regtypes, float immediates, calls, control
// flow) whose .rir text seeds the round-trip fuzzer.
func seedModule() *Module {
	m := &Module{Name: "fuzzseed"}
	m.Pragmas = append(m.Pragmas, ARPragma{Func: 0, Header: 1, AR: 0.25})

	cb := NewBuilder("callee", []Param{{Name: "x", Type: Float}}, Float)
	two := cb.ConstFloat(2.5)
	cb.Ret(cb.Binop(OpFMul, Float, Reg(0), two))
	m.Funcs = append(m.Funcs, cb.F)

	b := NewBuilder("kernel", []Param{
		{Name: "a", Type: Ptr}, {Name: "n", Type: Int},
	}, Void)
	body := b.NewBlock("body")
	done := b.NewBlock("done")
	zero := b.ConstInt(0)
	cond := b.Binop(OpLt, Int, zero, Reg(1))
	b.CondBr(cond, body, done)
	b.SetBlock(body)
	v := b.Load(Float, Reg(0))
	r := b.Call(0, Float, v)
	b.Store(Reg(0), r)
	b.Br(done)
	b.SetBlock(done)
	b.Ret(NoReg)
	m.Funcs = append(m.Funcs, b.F)

	m.Loops = append(m.Loops, LoopInfo{
		ID: 0, Func: 1, RecomputeFn: 0, Name: "kernel.loop@b1",
		ValueIsFloat: true, MemoFn: -1,
	})
	return m
}

func marshalString(t testing.TB, m *Module) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.MarshalText(&buf); err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	return buf.String()
}

// FuzzRIRRoundTrip: UnmarshalText must never panic on arbitrary
// bytes, and any text it accepts must round-trip exactly —
// Marshal(Unmarshal(text)) is a fixed point of the format.
func FuzzRIRRoundTrip(f *testing.F) {
	seed := seedModule()
	f.Add(marshalString(f, seed))
	f.Add("rir 1\nmodule m\n")
	f.Add("rir 1\nmodule m\nfunc f 0 false 0\nregtypes\nblock entry\ni ret -1 0 0 0 0  0\nendfunc\n")
	f.Add("rir 1\nmodule m\nloop 0 0 0 false -1 0 true false 0 L\n")
	f.Add("rir 2\n")
	f.Add("rir 1\nmodule m\nfunc f 0 false 99999999\n")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := UnmarshalText(strings.NewReader(text))
		if err != nil {
			return
		}
		out1 := marshalString(t, m)
		m2, err := UnmarshalText(strings.NewReader(out1))
		if err != nil {
			t.Fatalf("marshaled module does not re-parse: %v\n%s", err, out1)
		}
		if out2 := marshalString(t, m2); out2 != out1 {
			t.Fatalf("round-trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
	})
}

// TestSeedModuleRoundTrips pins the seed module itself: it must
// verify, serialize, and reload to identical text outside of fuzzing.
func TestSeedModuleRoundTrips(t *testing.T) {
	m := seedModule()
	if err := Verify(m); err != nil {
		t.Fatalf("seed module invalid: %v", err)
	}
	text := marshalString(t, m)
	m2, err := UnmarshalText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := marshalString(t, m2); got != text {
		t.Fatalf("round trip changed text:\n%s\nvs:\n%s", text, got)
	}
}
