package ir

import "fmt"

// Op is an IR operation code.
type Op uint8

// Operation codes. The set mirrors a RISC-like target plus the math
// intrinsics the benchmarks need and a handful of protection
// primitives (Check2, Vote3) that the SWIFT/SWIFT-R transforms emit at
// synchronization points. Check2/Vote3 stand for the short
// compare-and-branch / majority-vote sequences a real backend would
// inline; the machine charges them a multi-instruction cost so dynamic
// instruction counts stay honest.
const (
	OpInvalid Op = iota

	// Constants and moves.
	OpConstInt   // dst = imm (Int/Ptr)
	OpConstFloat // dst = fimm
	OpMov        // dst = arg0 (same type)

	// Integer arithmetic (also used for Ptr address computation).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Comparisons produce Int 0/1.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpFEq
	OpFNe
	OpFLt
	OpFLe
	OpFGt
	OpFGe

	// Conversions.
	OpIToF // Int -> Float
	OpFToI // Float -> Int (truncating)

	// Memory. Addresses are Ptr-typed registers holding word indexes.
	OpLoad   // dst = mem[arg0]
	OpStore  // mem[arg0] = arg1
	OpAlloca // dst = stack-allocate Imm words (freed at function return)

	// Math intrinsics (unary unless noted).
	OpSqrt
	OpExp
	OpLog
	OpFAbs
	OpPow // dst = pow(arg0, arg1)
	OpFloor
	OpFMin
	OpFMax

	// Control flow (block terminators).
	OpBr     // unconditional branch to Blocks[0]
	OpCondBr // if arg0 != 0 branch to Blocks[0] else Blocks[1]
	OpRet    // return arg0 (or nothing when no args)

	// Calls.
	OpCall // dst = call Callee(args...)

	// Protection primitives.
	OpCheck2 // compare arg0, arg1; signal detection on mismatch (SWIFT)
	OpVote3  // dst = majority(arg0, arg1, arg2) (SWIFT-R recovery)

	// Prediction-based protection runtime hooks. These are emitted by
	// the rskip transform inside PP loop versions and are serviced by
	// the run-time management system through the machine's runtime
	// bridge.
	OpRTLoopEnter // args: loop id (Imm); arg0.. = invariant live-ins
	OpRTObserve   // Imm = loop id; arg0 = iter, arg1 = value, arg2 = addr
	OpRTLoopExit  // Imm = loop id

	opMax // sentinel
)

// NumOps is the number of opcode values (including OpInvalid); dense
// per-opcode tables (the machine's counters, cost tables) are indexed
// [0, NumOps).
const NumOps = int(opMax)

var opNames = [...]string{
	OpInvalid:     "invalid",
	OpConstInt:    "const",
	OpConstFloat:  "fconst",
	OpMov:         "mov",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpDiv:         "div",
	OpRem:         "rem",
	OpAnd:         "and",
	OpOr:          "or",
	OpXor:         "xor",
	OpShl:         "shl",
	OpShr:         "shr",
	OpNeg:         "neg",
	OpFAdd:        "fadd",
	OpFSub:        "fsub",
	OpFMul:        "fmul",
	OpFDiv:        "fdiv",
	OpFNeg:        "fneg",
	OpEq:          "eq",
	OpNe:          "ne",
	OpLt:          "lt",
	OpLe:          "le",
	OpGt:          "gt",
	OpGe:          "ge",
	OpFEq:         "feq",
	OpFNe:         "fne",
	OpFLt:         "flt",
	OpFLe:         "fle",
	OpFGt:         "fgt",
	OpFGe:         "fge",
	OpIToF:        "itof",
	OpFToI:        "ftoi",
	OpLoad:        "load",
	OpStore:       "store",
	OpAlloca:      "alloca",
	OpSqrt:        "sqrt",
	OpExp:         "exp",
	OpLog:         "log",
	OpFAbs:        "fabs",
	OpPow:         "pow",
	OpFloor:       "floor",
	OpFMin:        "fmin",
	OpFMax:        "fmax",
	OpBr:          "br",
	OpCondBr:      "condbr",
	OpRet:         "ret",
	OpCall:        "call",
	OpCheck2:      "check2",
	OpVote3:       "vote3",
	OpRTLoopEnter: "rt.enter",
	OpRTObserve:   "rt.observe",
	OpRTLoopExit:  "rt.exit",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpBr || op == OpCondBr || op == OpRet
}

// HasDst reports whether the operation writes a destination register.
func (op Op) HasDst() bool {
	switch op {
	case OpStore, OpBr, OpCondBr, OpRet, OpCheck2,
		OpRTLoopEnter, OpRTObserve, OpRTLoopExit:
		return false
	case OpCall:
		return true // callers use NoReg for void calls
	}
	return op != OpInvalid && op < opMax
}

// IsFloatOp reports whether the operation's destination is Float.
func (op Op) IsFloatOp() bool {
	switch op {
	case OpConstFloat, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpIToF,
		OpSqrt, OpExp, OpLog, OpFAbs, OpPow, OpFloor, OpFMin, OpFMax:
		return true
	}
	return false
}

// IsCompare reports whether the operation is a comparison.
func (op Op) IsCompare() bool {
	return op >= OpEq && op <= OpFGe
}

// IsPure reports whether the operation has no side effect beyond
// writing its destination register. Pure operations are the ones the
// duplication transforms clone.
func (op Op) IsPure() bool {
	switch op {
	case OpStore, OpAlloca, OpBr, OpCondBr, OpRet, OpCall, OpCheck2,
		OpRTLoopEnter, OpRTObserve, OpRTLoopExit, OpInvalid:
		return false
	}
	return op < opMax
}
