package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildAddOne builds: func addone(int x) int { return x + 1 }.
func buildAddOne() *Func {
	b := NewBuilder("addone", []Param{{Name: "x", Type: Int}}, Int)
	one := b.ConstInt(1)
	sum := b.Binop(OpAdd, Int, 0, one)
	b.Ret(sum)
	return b.F
}

func TestBuilderBasics(t *testing.T) {
	f := buildAddOne()
	if f.NumRegs != 3 {
		t.Errorf("NumRegs = %d, want 3 (param, const, sum)", f.NumRegs)
	}
	if len(f.Blocks) != 1 || len(f.Blocks[0].Instrs) != 3 {
		t.Fatalf("unexpected block shape: %+v", f.Blocks)
	}
	m := &Module{Name: "t", Funcs: []*Func{f}}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBuilderControlFlow(t *testing.T) {
	b := NewBuilder("abs", []Param{{Name: "x", Type: Int}}, Int)
	zero := b.ConstInt(0)
	c := b.Binop(OpLt, Int, 0, zero)
	neg := b.NewBlock("neg")
	pos := b.NewBlock("pos")
	b.CondBr(c, neg, pos)
	b.SetBlock(neg)
	n := b.Unop(OpNeg, Int, 0)
	b.Ret(n)
	b.SetBlock(pos)
	b.Ret(0)
	m := &Module{Name: "t", Funcs: []*Func{b.F}}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBuilderEmitAfterTerminatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic emitting after a terminator")
		}
	}()
	b := NewBuilder("bad", nil, Void)
	b.Ret(NoReg)
	b.ConstInt(1)
}

func TestVerifyCatches(t *testing.T) {
	mk := func(mut func(*Func)) *Module {
		f := buildAddOne()
		mut(f)
		return &Module{Name: "t", Funcs: []*Func{f}}
	}
	cases := []struct {
		name string
		mut  func(*Func)
		want string
	}{
		{"empty block", func(f *Func) { f.Blocks = append(f.Blocks, Block{Name: "e"}) }, "empty"},
		{"bad register", func(f *Func) { f.Blocks[0].Instrs[1].Args = []Reg{99} }, "bad register"},
		{"missing terminator", func(f *Func) {
			f.Blocks[0].Instrs = f.Blocks[0].Instrs[:2]
		}, "terminator"},
		{"terminator mid-block", func(f *Func) {
			f.Blocks[0].Instrs[0] = Instr{Op: OpRet, Args: []Reg{0}}
		}, "terminator"},
		{"bad branch target", func(f *Func) {
			f.Blocks[0].Instrs[2] = Instr{Op: OpBr, Blocks: []int{7}}
		}, "bad block target"},
		{"arity", func(f *Func) {
			f.Blocks[0].Instrs[1].Args = []Reg{0}
		}, "args"},
		{"regtype len", func(f *Func) { f.RegType = f.RegType[:1] }, "RegType"},
		{"void ret value", func(f *Func) {
			f.Ret = Void
		}, "void return"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := Verify(mk(tt.mut))
			if err == nil {
				t.Fatalf("expected error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestVerifyCallChecks(t *testing.T) {
	callee := buildAddOne()
	b := NewBuilder("caller", nil, Int)
	arg := b.ConstInt(5)
	r := b.Call(0, Int, arg)
	b.Ret(r)
	m := &Module{Name: "t", Funcs: []*Func{callee, b.F}}
	// Callee index 0 is addone(int): fine.
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Wrong arg count.
	bad := m.Clone()
	bad.Funcs[1].Blocks[0].Instrs[1].Args = nil
	if err := Verify(bad); err == nil || !strings.Contains(err.Error(), "args, want") {
		t.Fatalf("want arg-count error, got %v", err)
	}
	// Wrong arg type.
	bad2 := m.Clone()
	bad2.Funcs[1].RegType[0] = Float
	if err := Verify(bad2); err == nil || !strings.Contains(err.Error(), "type") {
		t.Fatalf("want arg-type error, got %v", err)
	}
	// Bad callee index.
	bad3 := m.Clone()
	bad3.Funcs[1].Blocks[0].Instrs[1].Callee = 9
	if err := Verify(bad3); err == nil || !strings.Contains(err.Error(), "bad callee") {
		t.Fatalf("want callee error, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildAddOne()
	m := &Module{Name: "t", Funcs: []*Func{f},
		Loops: []LoopInfo{{ID: 1, Name: "l"}}}
	c := m.Clone()
	c.Funcs[0].Blocks[0].Instrs[0].Imm = 42
	c.Funcs[0].Blocks[0].Instrs[1].Args[0] = 2
	c.Loops[0].Name = "changed"
	if m.Funcs[0].Blocks[0].Instrs[0].Imm == 42 {
		t.Error("instruction Imm shared after clone")
	}
	if m.Funcs[0].Blocks[0].Instrs[1].Args[0] == 2 {
		t.Error("instruction Args shared after clone")
	}
	if m.Loops[0].Name == "changed" {
		t.Error("loops shared after clone")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpBr.IsTerminator() || !OpCondBr.IsTerminator() || !OpRet.IsTerminator() {
		t.Error("terminators misclassified")
	}
	if OpAdd.IsTerminator() || OpStore.IsTerminator() {
		t.Error("non-terminators misclassified")
	}
	if OpStore.HasDst() || OpBr.HasDst() || OpCheck2.HasDst() {
		t.Error("dst-less ops misclassified")
	}
	if !OpAdd.HasDst() || !OpLoad.HasDst() || !OpVote3.HasDst() {
		t.Error("dst ops misclassified")
	}
	if !OpFAdd.IsFloatOp() || OpAdd.IsFloatOp() {
		t.Error("float ops misclassified")
	}
	if !OpEq.IsCompare() || !OpFGe.IsCompare() || OpAdd.IsCompare() {
		t.Error("compares misclassified")
	}
	if OpStore.IsPure() || OpCall.IsPure() || OpAlloca.IsPure() {
		t.Error("impure ops misclassified")
	}
	if !OpAdd.IsPure() || !OpLoad.IsPure() || !OpSqrt.IsPure() {
		t.Error("pure ops misclassified")
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := OpConstInt; op < opMax; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestModuleLookups(t *testing.T) {
	m := &Module{Funcs: []*Func{buildAddOne()},
		Loops: []LoopInfo{{ID: 3, Name: "x"}}}
	if m.FuncByName("addone") != 0 || m.FuncByName("nope") != -1 {
		t.Error("FuncByName wrong")
	}
	if m.LoopByID(3) == nil || m.LoopByID(4) != nil {
		t.Error("LoopByID wrong")
	}
}

func TestPrintSmoke(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{buildAddOne()},
		Loops: []LoopInfo{{ID: 0, Name: "k", MemoFn: -1}}}
	s := m.String()
	for _, want := range []string{"module t", "func addone", "const 1", "add", "ret", "loop 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed module missing %q:\n%s", want, s)
		}
	}
}

// Property: NewReg allocates distinct, typed registers.
func TestNewRegProperty(t *testing.T) {
	f := &Func{Name: "p"}
	check := func(isFloat bool) bool {
		typ := Int
		if isFloat {
			typ = Float
		}
		r := f.NewReg(typ)
		return f.TypeOf(r) == typ && int(r) == f.NumRegs-1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
