package ir

import (
	"fmt"
	"strings"
)

// String renders the module as readable IR text. The format is for
// diagnostics and golden tests; it is not re-parsed.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, li := range m.Loops {
		fmt.Fprintf(&sb, "; loop %d %q func=%d recompute=%d selfread=%v memo=%d inv=%d\n",
			li.ID, li.Name, li.Func, li.RecomputeFn, li.SelfRead, li.MemoFn, li.NumInvariants)
	}
	for i, f := range m.Funcs {
		sb.WriteString(f.stringIndexed(m, i))
	}
	return sb.String()
}

// String renders the function without module context (callee indexes
// print numerically).
func (f *Func) String() string { return f.stringIndexed(nil, -1) }

func (f *Func) stringIndexed(m *Module, idx int) string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %s:r%d", p.Type, p.Name, i)
	}
	marker := ""
	if f.Internal {
		marker = " ; internal"
	}
	fmt.Fprintf(&sb, "\nfunc %s(%s) %s {%s\n", f.Name, strings.Join(params, ", "), f.Ret, marker)
	for bi := range f.Blocks {
		blk := &f.Blocks[bi]
		fmt.Fprintf(&sb, "b%d: ; %s\n", bi, blk.Name)
		for ii := range blk.Instrs {
			sb.WriteString("  ")
			sb.WriteString(formatInstr(m, f, &blk.Instrs[ii]))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	_ = idx
	return sb.String()
}

func formatInstr(m *Module, f *Func, in *Instr) string {
	var sb strings.Builder
	if in.Op.HasDst() && in.Dst != NoReg {
		fmt.Fprintf(&sb, "%v = ", in.Dst)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpConstInt, OpAlloca:
		fmt.Fprintf(&sb, " %d", in.Imm)
	case OpConstFloat:
		fmt.Fprintf(&sb, " %g", in.FImm)
	case OpCall:
		name := fmt.Sprintf("@%d", in.Callee)
		if m != nil && in.Callee >= 0 && in.Callee < len(m.Funcs) {
			name = "@" + m.Funcs[in.Callee].Name
		}
		sb.WriteString(" " + name)
	case OpRTLoopEnter, OpRTObserve, OpRTLoopExit:
		fmt.Fprintf(&sb, " #%d", in.Imm)
	}
	for _, a := range in.Args {
		fmt.Fprintf(&sb, " %v", a)
	}
	for _, t := range in.Blocks {
		fmt.Fprintf(&sb, " ->b%d", t)
	}
	if in.Tag != TagNone {
		fmt.Fprintf(&sb, " ; %s", in.Tag)
	}
	return sb.String()
}
