package ir

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Module serialization: a stable, line-oriented text format (".rir")
// so compiled and transformed modules can be written to disk and
// reloaded — the compiler emits artifacts, tools and tests reload
// them. The format is exact: float immediates travel as bit patterns,
// every metadata field round-trips.
//
//	rir 1
//	module <name>
//	pragma <func> <header> <ar-bits>
//	loop <id> <func> <recompute> <selfread> <memo> <ninv> <isfloat> <hasar> <ar-bits> <name...>
//	func <name> <ret> <internal> <numregs>
//	regtypes <one letter per register: v i f p>
//	param <type> <name>
//	block <name...>
//	i <op> <dst> <nargs> <args...> <nblocks> <blocks...> <imm> <fimm-bits> <callee> <tag>
//	endfunc

// MarshalText writes the module in .rir format.
func (m *Module) MarshalText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "rir 1\n")
	fmt.Fprintf(bw, "module %s\n", sanitizeName(m.Name))
	for _, p := range m.Pragmas {
		fmt.Fprintf(bw, "pragma %d %d %d\n", p.Func, p.Header, math.Float64bits(p.AR))
	}
	for _, l := range m.Loops {
		fmt.Fprintf(bw, "loop %d %d %d %t %d %d %t %t %d %s\n",
			l.ID, l.Func, l.RecomputeFn, l.SelfRead, l.MemoFn,
			l.NumInvariants, l.ValueIsFloat, l.HasAROverride,
			math.Float64bits(l.AROverride), sanitizeName(l.Name))
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(bw, "func %s %d %t %d\n", sanitizeName(f.Name), f.Ret, f.Internal, f.NumRegs)
		letters := make([]byte, f.NumRegs)
		for i, t := range f.RegType {
			letters[i] = "vifp"[t]
		}
		fmt.Fprintf(bw, "regtypes %s\n", letters)
		for _, p := range f.Params {
			fmt.Fprintf(bw, "param %d %s\n", p.Type, sanitizeName(p.Name))
		}
		for bi := range f.Blocks {
			fmt.Fprintf(bw, "block %s\n", sanitizeName(f.Blocks[bi].Name))
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				fmt.Fprintf(bw, "i %s %d %d", in.Op, in.Dst, len(in.Args))
				for _, a := range in.Args {
					fmt.Fprintf(bw, " %d", a)
				}
				fmt.Fprintf(bw, " %d", len(in.Blocks))
				for _, b := range in.Blocks {
					fmt.Fprintf(bw, " %d", b)
				}
				fmt.Fprintf(bw, " %d %d %d %d\n",
					in.Imm, math.Float64bits(in.FImm), in.Callee, in.Tag)
			}
		}
		fmt.Fprintf(bw, "endfunc\n")
	}
	return bw.Flush()
}

// sanitizeName keeps names single-token for the line format.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}

// opByName maps printed opcode names back to codes.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for op := OpInvalid + 1; op < opMax; op++ {
		m[op.String()] = op
	}
	return m
}()

// UnmarshalText reads a module in .rir format. The result is verified
// before it is returned.
func UnmarshalText(r io.Reader) (*Module, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	next := func() ([]string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			return strings.Fields(line), true
		}
		return nil, false
	}
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("ir: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	fields, ok := next()
	if !ok || len(fields) != 2 || fields[0] != "rir" || fields[1] != "1" {
		return nil, fail("missing `rir 1` header")
	}
	fields, ok = next()
	if !ok || len(fields) != 2 || fields[0] != "module" {
		return nil, fail("missing module line")
	}
	m := &Module{Name: fields[1]}

	var cur *Func
	for {
		fields, ok = next()
		if !ok {
			break
		}
		switch fields[0] {
		case "pragma":
			if cur != nil || len(fields) != 4 {
				return nil, fail("malformed pragma")
			}
			fn, e1 := strconv.Atoi(fields[1])
			hdr, e2 := strconv.Atoi(fields[2])
			bits, e3 := strconv.ParseUint(fields[3], 10, 64)
			if e1 != nil || e2 != nil || e3 != nil {
				return nil, fail("malformed pragma numbers")
			}
			m.Pragmas = append(m.Pragmas, ARPragma{Func: fn, Header: hdr, AR: math.Float64frombits(bits)})
		case "loop":
			if cur != nil || len(fields) != 11 {
				return nil, fail("malformed loop")
			}
			var l LoopInfo
			var arBits uint64
			_, err := fmt.Sscanf(strings.Join(fields[1:10], " "),
				"%d %d %d %t %d %d %t %t %d",
				&l.ID, &l.Func, &l.RecomputeFn, &l.SelfRead, &l.MemoFn,
				&l.NumInvariants, &l.ValueIsFloat, &l.HasAROverride, &arBits)
			if err != nil {
				return nil, fail("malformed loop fields: %v", err)
			}
			l.AROverride = math.Float64frombits(arBits)
			l.Name = fields[10]
			m.Loops = append(m.Loops, l)
		case "func":
			if cur != nil || len(fields) != 5 {
				return nil, fail("malformed func")
			}
			ret, e1 := strconv.Atoi(fields[2])
			internal, e2 := strconv.ParseBool(fields[3])
			nregs, e3 := strconv.Atoi(fields[4])
			if e1 != nil || e2 != nil || e3 != nil || nregs < 0 {
				return nil, fail("malformed func fields")
			}
			cur = &Func{Name: fields[1], Ret: Type(ret), Internal: internal, NumRegs: nregs}
		case "regtypes":
			if cur == nil {
				return nil, fail("regtypes outside func")
			}
			letters := ""
			if len(fields) == 2 {
				letters = fields[1]
			} else if len(fields) != 1 {
				return nil, fail("malformed regtypes")
			}
			if len(letters) != cur.NumRegs {
				return nil, fail("regtypes mismatch")
			}
			for _, ch := range letters {
				idx := strings.IndexRune("vifp", ch)
				if idx < 0 {
					return nil, fail("bad register type %q", ch)
				}
				cur.RegType = append(cur.RegType, Type(idx))
			}
		case "param":
			if cur == nil || len(fields) != 3 {
				return nil, fail("malformed param")
			}
			t, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad param type")
			}
			cur.Params = append(cur.Params, Param{Name: fields[2], Type: Type(t)})
		case "block":
			if cur == nil || len(fields) != 2 {
				return nil, fail("malformed block")
			}
			cur.Blocks = append(cur.Blocks, Block{Name: fields[1]})
		case "i":
			if cur == nil || len(cur.Blocks) == 0 {
				return nil, fail("instruction outside a block")
			}
			in, err := parseInstr(fields)
			if err != nil {
				return nil, fail("%v", err)
			}
			blk := &cur.Blocks[len(cur.Blocks)-1]
			blk.Instrs = append(blk.Instrs, in)
		case "endfunc":
			if cur == nil {
				return nil, fail("endfunc without func")
			}
			m.Funcs = append(m.Funcs, cur)
			cur = nil
		default:
			return nil, fail("unknown record %q", fields[0])
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("ir: unterminated func %s", cur.Name)
	}
	if err := Verify(m); err != nil {
		return nil, fmt.Errorf("ir: loaded module is invalid: %w", err)
	}
	return m, nil
}

func parseInstr(fields []string) (Instr, error) {
	// i <op> <dst> <nargs> <args...> <nblocks> <blocks...> <imm> <fimm> <callee> <tag>
	if len(fields) < 5 {
		return Instr{}, fmt.Errorf("short instruction line")
	}
	op, ok := opByName[fields[1]]
	if !ok {
		return Instr{}, fmt.Errorf("unknown opcode %q", fields[1])
	}
	pos := 2
	nextInt := func() (int64, error) {
		if pos >= len(fields) {
			return 0, fmt.Errorf("truncated instruction line")
		}
		v, err := strconv.ParseInt(fields[pos], 10, 64)
		pos++
		return v, err
	}
	in := Instr{Op: op}
	dst, err := nextInt()
	if err != nil {
		return Instr{}, err
	}
	in.Dst = Reg(dst)
	nargs, err := nextInt()
	if err != nil || nargs < 0 || nargs > 16 {
		return Instr{}, fmt.Errorf("bad arg count")
	}
	for k := int64(0); k < nargs; k++ {
		a, err := nextInt()
		if err != nil {
			return Instr{}, err
		}
		in.Args = append(in.Args, Reg(a))
	}
	nblocks, err := nextInt()
	if err != nil || nblocks < 0 || nblocks > 2 {
		return Instr{}, fmt.Errorf("bad block count")
	}
	for k := int64(0); k < nblocks; k++ {
		b, err := nextInt()
		if err != nil {
			return Instr{}, err
		}
		in.Blocks = append(in.Blocks, int(b))
	}
	if in.Imm, err = nextInt(); err != nil {
		return Instr{}, err
	}
	if pos >= len(fields) {
		return Instr{}, fmt.Errorf("truncated instruction line")
	}
	fbits, err := strconv.ParseUint(fields[pos], 10, 64)
	pos++
	if err != nil {
		return Instr{}, err
	}
	in.FImm = math.Float64frombits(fbits)
	callee, err := nextInt()
	if err != nil {
		return Instr{}, err
	}
	in.Callee = int(callee)
	tag, err := nextInt()
	if err != nil || tag < 0 || tag > 5 {
		return Instr{}, fmt.Errorf("bad tag")
	}
	in.Tag = InstrTag(tag)
	if pos != len(fields) {
		return Instr{}, fmt.Errorf("trailing junk on instruction line")
	}
	return in, nil
}
