package ir

import "fmt"

// Instr is a single IR instruction.
//
// Register operands live in Args; Imm carries integer immediates
// (constants, alloca sizes, loop ids) and FImm float immediates.
// Control-flow targets are block indexes in Blocks. Calls name their
// callee by function index in Callee.
type Instr struct {
	Op     Op
	Dst    Reg
	Args   []Reg
	Imm    int64
	FImm   float64
	Blocks []int // branch targets (block indexes within the function)
	Callee int   // function index for OpCall

	// Tags record which protection role a register computation plays.
	// The rskip transform sets these; the fault-injection campaign and
	// the machine's accounting use them.
	Tag InstrTag
}

// InstrTag classifies an instruction for protection accounting.
type InstrTag uint8

// Instruction protection-role tags.
const (
	TagNone    InstrTag = iota
	TagShadow           // a duplicated (shadow) copy inserted by SWIFT/SWIFT-R
	TagCheck            // a validation/vote inserted at a sync point
	TagValue            // part of a PP loop's predicted value slice
	TagAddress          // address/induction computation inside a PP loop
	TagRuntime          // runtime-management hook
)

var tagNames = [...]string{"", "shadow", "check", "value", "addr", "rt"}

func (t InstrTag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// Block is a basic block: a straight-line instruction sequence ending
// in a terminator.
type Block struct {
	Name   string
	Instrs []Instr
}

// Terminator returns the block's final instruction. It panics on an
// empty block; the verifier rejects those first.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		panic("ir: empty block has no terminator")
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Param describes a function parameter.
type Param struct {
	Name string
	Type Type
}

// LoopInfo annotates a PP-protected loop for the run-time management
// system. The rskip transform records one per versioned loop.
type LoopInfo struct {
	ID          int    // unique per module
	Func        int    // function index
	Name        string // diagnostic label, e.g. "kernel.loop1"
	RecomputeFn int    // function index of the outlined __recompute slice
	// StoreAddrIsLiveIn reports whether recompute reads the stored
	// location's pre-store value (read-modify-write loops such as lud);
	// the runtime then buffers the original value per element.
	SelfRead bool
	// MemoFn, when >= 0, names the function whose results the
	// approximate-memoization table caches (blackscholes'
	// BlkSchlsEqEuroNoDiv). -1 when memoization is not applicable.
	MemoFn int
	// NumInvariants is the count of invariant live-in registers passed
	// to OpRTLoopEnter and forwarded to the recompute function after
	// the iteration index.
	NumInvariants int
	// ValueIsFloat reports whether the predicted value is a float
	// (predictors convert int values for trend arithmetic).
	ValueIsFloat bool
	// HasAROverride/AROverride carry a source pragma's acceptable-range
	// override for this loop (§3 footnote 5).
	HasAROverride bool
	AROverride    float64
}

// Func is an IR function.
type Func struct {
	Name    string
	Params  []Param
	Ret     Type
	NumRegs int // registers r0..NumRegs-1; params occupy r0..len(Params)-1
	RegType []Type
	Blocks  []Block

	// Internal marks compiler-generated helpers (outlined recompute
	// slices) that transforms must not re-protect.
	Internal bool
}

// NewReg allocates a fresh register of the given type.
func (f *Func) NewReg(t Type) Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	f.RegType = append(f.RegType, t)
	return r
}

// TypeOf returns the declared type of register r.
func (f *Func) TypeOf(r Reg) Type {
	if r == NoReg {
		return Void
	}
	return f.RegType[r]
}

// ARPragma records a source-level `#pragma rskip ar(x)` attached to a
// loop, identified by its function index and header block.
type ARPragma struct {
	Func   int
	Header int
	AR     float64
}

// Module is a compilation unit: a set of functions plus the loop
// protection metadata produced by the rskip transform.
type Module struct {
	Name    string
	Funcs   []*Func
	Loops   []LoopInfo
	Pragmas []ARPragma
}

// PragmaFor returns the AR override for a loop header, if any.
func (m *Module) PragmaFor(fn, header int) (float64, bool) {
	for _, p := range m.Pragmas {
		if p.Func == fn && p.Header == header {
			return p.AR, true
		}
	}
	return 0, false
}

// FuncByName returns the index of the named function, or -1.
func (m *Module) FuncByName(name string) int {
	for i, f := range m.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// LoopByID returns the loop info with the given id, or nil.
func (m *Module) LoopByID(id int) *LoopInfo {
	for i := range m.Loops {
		if m.Loops[i].ID == id {
			return &m.Loops[i]
		}
	}
	return nil
}

// Clone returns a deep copy of the module. Transforms clone before
// rewriting so the unprotected module stays available as the UNSAFE
// reference and as the source for further schemes.
func (m *Module) Clone() *Module {
	nm := &Module{Name: m.Name}
	nm.Loops = append([]LoopInfo(nil), m.Loops...)
	nm.Pragmas = append([]ARPragma(nil), m.Pragmas...)
	nm.Funcs = make([]*Func, len(m.Funcs))
	for i, f := range m.Funcs {
		nm.Funcs[i] = f.Clone()
	}
	return nm
}

// Clone returns a deep copy of the function.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:     f.Name,
		Params:   append([]Param(nil), f.Params...),
		Ret:      f.Ret,
		NumRegs:  f.NumRegs,
		RegType:  append([]Type(nil), f.RegType...),
		Internal: f.Internal,
	}
	nf.Blocks = make([]Block, len(f.Blocks))
	for i := range f.Blocks {
		src := &f.Blocks[i]
		dst := &nf.Blocks[i]
		dst.Name = src.Name
		dst.Instrs = make([]Instr, len(src.Instrs))
		for j := range src.Instrs {
			in := src.Instrs[j]
			in.Args = append([]Reg(nil), in.Args...)
			in.Blocks = append([]int(nil), in.Blocks...)
			dst.Instrs[j] = in
		}
	}
	return nf
}
