// Package lower translates checked MiniC ASTs into the RSkip IR.
package lower

import (
	"fmt"

	"rskip/internal/ir"
	"rskip/internal/lang"
)

// Program lowers a checked program into an IR module. The program must
// have passed lang.Check; lowering panics-free relies on that.
func Program(name string, prog *lang.Program) (*ir.Module, error) {
	sigs, err := lang.Check(prog)
	if err != nil {
		return nil, err
	}
	m := &ir.Module{Name: name}
	indexes := make(map[string]int, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		indexes[fn.Name] = i
		m.Funcs = append(m.Funcs, nil) // reserve slot so calls can resolve
	}
	for i, fn := range prog.Funcs {
		f, pragmas, err := lowerFunc(fn, indexes, sigs)
		if err != nil {
			return nil, err
		}
		m.Funcs[i] = f
		for _, pg := range pragmas {
			pg.Func = i
			m.Pragmas = append(m.Pragmas, pg)
		}
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("lower: internal error: %w", err)
	}
	return m, nil
}

// Compile is the one-call frontend: source text to IR module.
func Compile(name, src string) (*ir.Module, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Program(name, prog)
}

type loopCtx struct {
	breakTo    int
	continueTo int
}

type lowerer struct {
	b        *ir.Builder
	indexes  map[string]int
	sigTable map[string]*lang.FuncSig
	scopes   []map[string]varSlot
	loops    []loopCtx
	// pragmas collects (header block, AR) pairs for loops carrying a
	// `#pragma rskip ar(x)`.
	pragmas []ir.ARPragma
}

type varSlot struct {
	reg     ir.Reg
	typ     ir.Type
	isArray bool
}

func irType(t lang.TypeKind) ir.Type {
	switch t {
	case lang.TypeInt:
		return ir.Int
	case lang.TypeFloat:
		return ir.Float
	}
	return ir.Void
}

func lowerFunc(fn *lang.FuncDecl, indexes map[string]int, sigs map[string]*lang.FuncSig) (*ir.Func, []ir.ARPragma, error) {
	params := make([]ir.Param, len(fn.Params))
	for i, p := range fn.Params {
		t := irType(p.Type)
		if p.IsArray {
			t = ir.Ptr
		}
		params[i] = ir.Param{Name: p.Name, Type: t}
	}
	b := ir.NewBuilder(fn.Name, params, irType(fn.Ret))
	lw := &lowerer{b: b, indexes: indexes, sigTable: sigs}
	lw.push()
	for i, p := range fn.Params {
		lw.bind(p.Name, varSlot{reg: ir.Reg(i), typ: irType(p.Type), isArray: p.IsArray})
	}
	if err := lw.block(fn.Body, false); err != nil {
		return nil, nil, err
	}
	lw.pop()
	if !b.Terminated() {
		if fn.Ret == lang.TypeVoid {
			b.Ret(ir.NoReg)
		} else {
			// Fall-off-the-end of a value-returning function returns a
			// zero; MiniC has no unreachable-code analysis.
			if fn.Ret == lang.TypeFloat {
				b.Ret(b.ConstFloat(0))
			} else {
				b.Ret(b.ConstInt(0))
			}
		}
	}
	return b.F, lw.pragmas, nil
}

func (lw *lowerer) push() { lw.scopes = append(lw.scopes, map[string]varSlot{}) }
func (lw *lowerer) pop()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) bind(name string, s varSlot) {
	lw.scopes[len(lw.scopes)-1][name] = s
}

func (lw *lowerer) lookup(name string) (varSlot, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if s, ok := lw.scopes[i][name]; ok {
			return s, true
		}
	}
	return varSlot{}, false
}

func (lw *lowerer) block(b *lang.BlockStmt, ownScope bool) error {
	if ownScope {
		lw.push()
		defer lw.pop()
	}
	for _, s := range b.Stmts {
		if lw.b.Terminated() {
			// Unreachable trailing statements (code after return) are
			// dropped; the checker accepted them, so just stop.
			return nil
		}
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.BlockStmt:
		return lw.block(st, true)
	case *lang.DeclStmt:
		return lw.decl(st)
	case *lang.AssignStmt:
		return lw.assign(st)
	case *lang.IfStmt:
		return lw.ifStmt(st)
	case *lang.ForStmt:
		return lw.forStmt(st)
	case *lang.WhileStmt:
		return lw.whileStmt(st)
	case *lang.ReturnStmt:
		if st.Value == nil {
			lw.b.Ret(ir.NoReg)
			return nil
		}
		v, err := lw.expr(st.Value)
		if err != nil {
			return err
		}
		v = lw.convert(v, irType(st.Value.ResultType()), lw.b.F.Ret)
		lw.b.Ret(v)
		return nil
	case *lang.ExprStmt:
		_, err := lw.expr(st.X)
		return err
	case *lang.BreakStmt:
		lw.b.Br(lw.loops[len(lw.loops)-1].breakTo)
		return nil
	case *lang.ContinueStmt:
		lw.b.Br(lw.loops[len(lw.loops)-1].continueTo)
		return nil
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

func (lw *lowerer) decl(st *lang.DeclStmt) error {
	t := irType(st.Type)
	if st.ArrayLen > 0 {
		base := lw.b.Alloca(st.ArrayLen)
		lw.bind(st.Name, varSlot{reg: base, typ: t, isArray: true})
		return nil
	}
	reg := lw.b.F.NewReg(t)
	if st.Init != nil {
		v, err := lw.expr(st.Init)
		if err != nil {
			return err
		}
		v = lw.convert(v, irType(st.Init.ResultType()), t)
		lw.b.Mov(reg, v)
	} else {
		// Zero-initialize so the machine never reads an undefined
		// register.
		var zero ir.Reg
		if t == ir.Float {
			zero = lw.b.ConstFloat(0)
		} else {
			zero = lw.b.ConstInt(0)
		}
		lw.b.Mov(reg, zero)
	}
	lw.bind(st.Name, varSlot{reg: reg, typ: t})
	return nil
}

func (lw *lowerer) assign(st *lang.AssignStmt) error {
	switch lhs := st.LHS.(type) {
	case *lang.NameExpr:
		slot, _ := lw.lookup(lhs.Name)
		v, err := lw.expr(st.RHS)
		if err != nil {
			return err
		}
		if st.Op != lang.EOF {
			v = lw.applyCompound(st.Op, slot.reg, v, slot.typ, irType(st.RHS.ResultType()))
		} else {
			v = lw.convert(v, irType(st.RHS.ResultType()), slot.typ)
		}
		lw.b.Mov(slot.reg, v)
		return nil
	case *lang.IndexExpr:
		// The address is evaluated exactly once, including for the
		// compound forms (C semantics for `a[i] += e`).
		addr, elemT, err := lw.indexAddr(lhs)
		if err != nil {
			return err
		}
		v, err := lw.expr(st.RHS)
		if err != nil {
			return err
		}
		if st.Op != lang.EOF {
			old := lw.b.Load(elemT, addr)
			v = lw.applyCompound(st.Op, old, v, elemT, irType(st.RHS.ResultType()))
		} else {
			v = lw.convert(v, irType(st.RHS.ResultType()), elemT)
		}
		lw.b.Store(addr, v)
		return nil
	}
	return fmt.Errorf("lower: bad assignment target %T", st.LHS)
}

// applyCompound emits `cur <op> rhs` in the target's type, widening
// the right-hand side when needed.
func (lw *lowerer) applyCompound(op lang.Kind, cur, rhs ir.Reg, curT, rhsT ir.Type) ir.Reg {
	rhs = lw.convert(rhs, rhsT, curT)
	var iop, fop ir.Op
	switch op {
	case lang.Plus:
		iop, fop = ir.OpAdd, ir.OpFAdd
	case lang.Minus:
		iop, fop = ir.OpSub, ir.OpFSub
	case lang.Star:
		iop, fop = ir.OpMul, ir.OpFMul
	default: // Slash
		iop, fop = ir.OpDiv, ir.OpFDiv
	}
	if curT == ir.Float {
		return lw.b.Binop(fop, ir.Float, cur, rhs)
	}
	return lw.b.Binop(iop, curT, cur, rhs)
}

func (lw *lowerer) indexAddr(ix *lang.IndexExpr) (ir.Reg, ir.Type, error) {
	slot, ok := lw.lookup(ix.Base)
	if !ok || !slot.isArray {
		return ir.NoReg, ir.Void, fmt.Errorf("lower: %q is not an array", ix.Base)
	}
	idx, err := lw.expr(ix.Idx)
	if err != nil {
		return ir.NoReg, ir.Void, err
	}
	addr := lw.b.Binop(ir.OpAdd, ir.Ptr, slot.reg, idx)
	return addr, slot.typ, nil
}

func (lw *lowerer) ifStmt(st *lang.IfStmt) error {
	cond, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	thenB := lw.b.NewBlock("if.then")
	elseB := -1
	joinB := lw.b.NewBlock("if.join")
	target := joinB
	if st.Else != nil {
		elseB = lw.b.NewBlock("if.else")
		target = elseB
	}
	lw.b.CondBr(cond, thenB, target)
	lw.b.SetBlock(thenB)
	if err := lw.block(st.Then, true); err != nil {
		return err
	}
	if !lw.b.Terminated() {
		lw.b.Br(joinB)
	}
	if st.Else != nil {
		lw.b.SetBlock(elseB)
		if err := lw.block(st.Else, true); err != nil {
			return err
		}
		if !lw.b.Terminated() {
			lw.b.Br(joinB)
		}
	}
	lw.b.SetBlock(joinB)
	return nil
}

func (lw *lowerer) forStmt(st *lang.ForStmt) error {
	lw.push()
	defer lw.pop()
	if st.Init != nil {
		if err := lw.stmt(st.Init); err != nil {
			return err
		}
	}
	condB := lw.b.NewBlock("for.cond")
	bodyB := lw.b.NewBlock("for.body")
	postB := lw.b.NewBlock("for.post")
	exitB := lw.b.NewBlock("for.exit")
	if st.ARPragma != nil {
		lw.pragmas = append(lw.pragmas, ir.ARPragma{Header: condB, AR: *st.ARPragma})
	}
	lw.b.Br(condB)

	lw.b.SetBlock(condB)
	if st.Cond != nil {
		c, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		lw.b.CondBr(c, bodyB, exitB)
	} else {
		lw.b.Br(bodyB)
	}

	lw.b.SetBlock(bodyB)
	lw.loops = append(lw.loops, loopCtx{breakTo: exitB, continueTo: postB})
	if err := lw.block(st.Body, true); err != nil {
		return err
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	if !lw.b.Terminated() {
		lw.b.Br(postB)
	}

	lw.b.SetBlock(postB)
	if st.Post != nil {
		if err := lw.stmt(st.Post); err != nil {
			return err
		}
	}
	lw.b.Br(condB)

	lw.b.SetBlock(exitB)
	return nil
}

func (lw *lowerer) whileStmt(st *lang.WhileStmt) error {
	condB := lw.b.NewBlock("while.cond")
	bodyB := lw.b.NewBlock("while.body")
	exitB := lw.b.NewBlock("while.exit")
	lw.b.Br(condB)

	lw.b.SetBlock(condB)
	c, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	lw.b.CondBr(c, bodyB, exitB)

	lw.b.SetBlock(bodyB)
	lw.loops = append(lw.loops, loopCtx{breakTo: exitB, continueTo: condB})
	if err := lw.block(st.Body, true); err != nil {
		return err
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	if !lw.b.Terminated() {
		lw.b.Br(condB)
	}

	lw.b.SetBlock(exitB)
	return nil
}

// convert inserts an int->float widening when needed; identical types
// pass through.
func (lw *lowerer) convert(v ir.Reg, from, to ir.Type) ir.Reg {
	if from == to || to == ir.Void {
		return v
	}
	if from == ir.Int && to == ir.Float {
		return lw.b.Unop(ir.OpIToF, ir.Float, v)
	}
	if from == ir.Float && to == ir.Int {
		return lw.b.Unop(ir.OpFToI, ir.Int, v)
	}
	return v
}

func (lw *lowerer) expr(e lang.Expr) (ir.Reg, error) {
	switch ex := e.(type) {
	case *lang.IntLitExpr:
		return lw.b.ConstInt(ex.Value), nil
	case *lang.FloatLitExpr:
		return lw.b.ConstFloat(ex.Value), nil
	case *lang.NameExpr:
		slot, ok := lw.lookup(ex.Name)
		if !ok {
			return ir.NoReg, fmt.Errorf("lower: undefined %q", ex.Name)
		}
		return slot.reg, nil
	case *lang.IndexExpr:
		addr, t, err := lw.indexAddr(ex)
		if err != nil {
			return ir.NoReg, err
		}
		return lw.b.Load(t, addr), nil
	case *lang.CallExpr:
		return lw.call(ex)
	case *lang.UnaryExpr:
		x, err := lw.expr(ex.X)
		if err != nil {
			return ir.NoReg, err
		}
		if ex.Op == lang.Not {
			zero := lw.b.ConstInt(0)
			return lw.b.Binop(ir.OpEq, ir.Int, x, zero), nil
		}
		if ex.ResultType() == lang.TypeFloat {
			x = lw.convert(x, irType(ex.X.ResultType()), ir.Float)
			return lw.b.Unop(ir.OpFNeg, ir.Float, x), nil
		}
		return lw.b.Unop(ir.OpNeg, ir.Int, x), nil
	case *lang.BinaryExpr:
		return lw.binary(ex)
	}
	return ir.NoReg, fmt.Errorf("lower: unknown expression %T", e)
}

func (lw *lowerer) call(ex *lang.CallExpr) (ir.Reg, error) {
	if ex.Builtin != "" {
		args := make([]ir.Reg, len(ex.Args))
		for i, a := range ex.Args {
			r, err := lw.expr(a)
			if err != nil {
				return ir.NoReg, err
			}
			args[i] = r
		}
		at := func(i int) ir.Type { return irType(ex.Args[i].ResultType()) }
		switch ex.Builtin {
		case "int":
			return lw.convert(args[0], at(0), ir.Int), nil
		case "float":
			return lw.convert(args[0], at(0), ir.Float), nil
		case "pow", "fmin", "fmax":
			x := lw.convert(args[0], at(0), ir.Float)
			y := lw.convert(args[1], at(1), ir.Float)
			op := map[string]ir.Op{"pow": ir.OpPow, "fmin": ir.OpFMin, "fmax": ir.OpFMax}[ex.Builtin]
			return lw.b.Binop(op, ir.Float, x, y), nil
		default:
			x := lw.convert(args[0], at(0), ir.Float)
			op := map[string]ir.Op{
				"sqrt": ir.OpSqrt, "exp": ir.OpExp, "log": ir.OpLog,
				"fabs": ir.OpFAbs, "floor": ir.OpFloor,
			}[ex.Builtin]
			if op == ir.OpInvalid {
				return ir.NoReg, fmt.Errorf("lower: unknown builtin %q", ex.Builtin)
			}
			return lw.b.Unop(op, ir.Float, x), nil
		}
	}
	idx, ok := lw.indexes[ex.Name]
	if !ok {
		return ir.NoReg, fmt.Errorf("lower: call to unknown function %q", ex.Name)
	}
	args := make([]ir.Reg, len(ex.Args))
	for i, a := range ex.Args {
		r, err := lw.expr(a)
		if err != nil {
			return ir.NoReg, err
		}
		// Array arguments pass the base pointer through unchanged;
		// scalars may need widening to the parameter type. We cannot
		// see the callee's ir.Func yet (it may not be lowered), so we
		// rely on the checker having validated types and only insert
		// the int->float widening the checker allowed.
		if n, isName := a.(*lang.NameExpr); !(isName && n.IsArray) {
			r = lw.convert(r, irType(a.ResultType()), irType(paramType(lw, ex.Name, i)))
		}
		args[i] = r
	}
	ret := irType(ex.ResultType())
	return lw.b.Call(idx, ret, args...), nil
}

// paramType looks up the declared type of parameter i of the named
// function via the signature table captured during lowering.
func paramType(lw *lowerer, fn string, i int) lang.TypeKind {
	if sig, ok := lw.sigTable[fn]; ok && i < len(sig.Params) {
		return sig.Params[i].Type
	}
	return lang.TypeVoid
}

func (lw *lowerer) binary(ex *lang.BinaryExpr) (ir.Reg, error) {
	if ex.Op == lang.AndAnd || ex.Op == lang.OrOr {
		return lw.shortCircuit(ex)
	}
	x, err := lw.expr(ex.X)
	if err != nil {
		return ir.NoReg, err
	}
	y, err := lw.expr(ex.Y)
	if err != nil {
		return ir.NoReg, err
	}
	xt := irType(ex.X.ResultType())
	yt := irType(ex.Y.ResultType())
	floatOperands := xt == ir.Float || yt == ir.Float
	if floatOperands {
		x = lw.convert(x, xt, ir.Float)
		y = lw.convert(y, yt, ir.Float)
	}
	type opPair struct{ i, f ir.Op }
	table := map[lang.Kind]opPair{
		lang.Plus:    {ir.OpAdd, ir.OpFAdd},
		lang.Minus:   {ir.OpSub, ir.OpFSub},
		lang.Star:    {ir.OpMul, ir.OpFMul},
		lang.Slash:   {ir.OpDiv, ir.OpFDiv},
		lang.Percent: {ir.OpRem, ir.OpInvalid},
		lang.EqEq:    {ir.OpEq, ir.OpFEq},
		lang.NotEq:   {ir.OpNe, ir.OpFNe},
		lang.Lt:      {ir.OpLt, ir.OpFLt},
		lang.Le:      {ir.OpLe, ir.OpFLe},
		lang.Gt:      {ir.OpGt, ir.OpFGt},
		lang.Ge:      {ir.OpGe, ir.OpFGe},
	}
	pair, ok := table[ex.Op]
	if !ok {
		return ir.NoReg, fmt.Errorf("lower: unknown binary op %v", ex.Op)
	}
	op := pair.i
	if floatOperands {
		op = pair.f
	}
	resT := irType(ex.ResultType())
	// Comparisons always produce Int regardless of operand type.
	if op.IsCompare() {
		resT = ir.Int
	}
	return lw.b.Binop(op, resT, x, y), nil
}

// shortCircuit lowers && and || with control flow into a result
// register, preserving C evaluation semantics.
func (lw *lowerer) shortCircuit(ex *lang.BinaryExpr) (ir.Reg, error) {
	res := lw.b.F.NewReg(ir.Int)
	x, err := lw.expr(ex.X)
	if err != nil {
		return ir.NoReg, err
	}
	evalY := lw.b.NewBlock("sc.rhs")
	short := lw.b.NewBlock("sc.short")
	join := lw.b.NewBlock("sc.join")
	if ex.Op == lang.AndAnd {
		lw.b.CondBr(x, evalY, short)
	} else {
		lw.b.CondBr(x, short, evalY)
	}
	lw.b.SetBlock(short)
	var c ir.Reg
	if ex.Op == lang.AndAnd {
		c = lw.b.ConstInt(0)
	} else {
		c = lw.b.ConstInt(1)
	}
	lw.b.Mov(res, c)
	lw.b.Br(join)

	lw.b.SetBlock(evalY)
	y, err := lw.expr(ex.Y)
	if err != nil {
		return ir.NoReg, err
	}
	zero := lw.b.ConstInt(0)
	norm := lw.b.Binop(ir.OpNe, ir.Int, y, zero)
	lw.b.Mov(res, norm)
	lw.b.Br(join)

	lw.b.SetBlock(join)
	return res, nil
}
