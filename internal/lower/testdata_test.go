package lower

import (
	"os"
	"path/filepath"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/transform"
)

// TestTestdataFiles compiles the shipped .mc sources and checks the
// candidate analysis agrees with each file's intent.
func TestTestdataFiles(t *testing.T) {
	cases := []struct {
		file       string
		candidates int
		pragmas    int
	}{
		{"smoother.mc", 2, 1},
		{"reject.mc", 0, 0},
	}
	for _, tt := range cases {
		t.Run(tt.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", tt.file))
			if err != nil {
				t.Fatal(err)
			}
			mod, err := Compile(tt.file, string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if got := len(analysis.FindCandidates(mod, analysis.Options{})); got != tt.candidates {
				t.Errorf("candidates = %d, want %d", got, tt.candidates)
			}
			if got := len(mod.Pragmas); got != tt.pragmas {
				t.Errorf("pragmas = %d, want %d", got, tt.pragmas)
			}
			rsk, err := transform.ApplyRSkip(mod, analysis.Options{})
			if err != nil {
				t.Fatalf("rskip transform: %v", err)
			}
			if err := ir.Verify(rsk); err != nil {
				t.Fatal(err)
			}
			// The pragma'd loop must carry its override.
			overrides := 0
			for _, li := range rsk.Loops {
				if li.HasAROverride {
					overrides++
					if li.AROverride != 0 {
						t.Errorf("override AR = %g, want 0", li.AROverride)
					}
				}
			}
			if overrides != tt.pragmas {
				t.Errorf("overrides = %d, want %d", overrides, tt.pragmas)
			}
		})
	}
}
