package lower

import (
	"strings"
	"testing"

	"rskip/internal/lang"
	"rskip/internal/machine"
)

func TestCompoundAssignment(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{`int f() { int x = 10; x += 5; return x; }`, 15},
		{`int f() { int x = 10; x -= 3; return x; }`, 7},
		{`int f() { int x = 10; x *= 4; return x; }`, 40},
		{`int f() { int x = 10; x /= 3; return x; }`, 3},
		{`int f() { int x = 10; x++; x++; return x; }`, 12},
		{`int f() { int x = 10; x--; return x; }`, 9},
		{`int f() { int t[4]; t[2] = 7; t[2] += 3; t[2] *= 2; return t[2]; }`, 20},
		{`int f() { int t[4]; t[1] = 5; t[1]++; return t[1]; }`, 6},
		{`int f() {
			int s = 0;
			for (int i = 0; i < 5; i++) { s += i; }
			return s;
		}`, 10},
		{`int f() { float x = 2.0; x *= 3.0; x += 1; return int(x); }`, 7},
	}
	for _, tt := range tests {
		got := runInt(t, tt.src, "f")
		if got != tt.want {
			t.Errorf("%s = %d, want %d", tt.src, got, tt.want)
		}
	}
}

func TestCompoundIndexEvaluatedOnce(t *testing.T) {
	// bump() has a side effect (increments a counter cell); using it as
	// the index of a compound assignment must evaluate it exactly once.
	src := `
int bump(int c[]) {
	c[0] = c[0] + 1;
	return c[0];
}
int f(int c[], int t[]) {
	t[1] = 100;
	t[bump(c)] += 5;
	return t[1] * 1000 + c[0];
}
`
	mod, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(mod, machine.Config{TraceFn: -1})
	c := m.Mem.Alloc(4)
	tr := m.Mem.Alloc(8)
	res, err := m.Run(mod.FuncByName("f"), []uint64{uint64(c), uint64(tr)})
	if err != nil {
		t.Fatal(err)
	}
	// bump called once: c[0]==1, index 1, t[1] = 105.
	if got := int64(res.Ret); got != 105*1000+1 {
		t.Errorf("got %d, want 105001 (index evaluated once)", got)
	}
}

func TestCompoundAssignTypeErrors(t *testing.T) {
	cases := []string{
		`int f() { int x; x += 1.5; return x; }`,              // float into int
		`void g() { } int f() { int x; x += g(); return x; }`, // void rhs
		`int f(int a[]) { a += 1; return 0; }`,                // array target
	}
	for _, src := range cases {
		if _, err := Compile("t", src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestCompoundParsesInForHeader(t *testing.T) {
	prog, err := lang.Parse(`int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i += 2) { s++; }
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	if got := runInt(t, `int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i += 2) { s++; }
	return s;
}`, "f", 10); got != 5 {
		t.Errorf("strided loop ran %d times, want 5", got)
	}
}

func TestPlusPlusNotAnExpression(t *testing.T) {
	// x++ is a statement, not an expression.
	if _, err := Compile("t", `int f() { int x = 1; return x++; }`); err == nil {
		t.Error("x++ in expression position should not parse")
	}
	_ = strings.Contains
}
