package lower

import (
	"strings"
	"testing"

	"rskip/internal/lang"
)

const pragmaSrc = `
void kernel(int a[], int out[], int n) {
	#pragma rskip ar(0)
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 6; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}
`

func TestPragmaParses(t *testing.T) {
	prog, err := lang.Parse(pragmaSrc)
	if err != nil {
		t.Fatal(err)
	}
	forStmt := prog.Funcs[0].Body.Stmts[0].(*lang.ForStmt)
	if forStmt.ARPragma == nil || *forStmt.ARPragma != 0 {
		t.Fatalf("pragma not attached: %+v", forStmt.ARPragma)
	}
}

func TestPragmaFlowsToModule(t *testing.T) {
	mod, err := Compile("t", pragmaSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Pragmas) != 1 {
		t.Fatalf("got %d pragmas, want 1", len(mod.Pragmas))
	}
	p := mod.Pragmas[0]
	if p.AR != 0 || p.Func != 0 {
		t.Errorf("pragma = %+v", p)
	}
	if ar, ok := mod.PragmaFor(p.Func, p.Header); !ok || ar != 0 {
		t.Errorf("PragmaFor lookup failed")
	}
	if _, ok := mod.PragmaFor(p.Func, p.Header+1); ok {
		t.Errorf("PragmaFor matched the wrong header")
	}
}

func TestPragmaNonZeroValue(t *testing.T) {
	src := strings.Replace(pragmaSrc, "ar(0)", "ar(0.5)", 1)
	mod, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Pragmas) != 1 || mod.Pragmas[0].AR != 0.5 {
		t.Fatalf("pragmas = %+v", mod.Pragmas)
	}
}

func TestPragmaErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`void f() {
			#pragma rskip ar(nope)
			for (int i = 0; i < 2; i = i + 1) { }
		}`, "malformed pragma"},
		{`void f() {
			#pragma rskip ar(-1)
			for (int i = 0; i < 2; i = i + 1) { }
		}`, "non-negative"},
		{`void f() {
			#pragma rskip ar(0)
			int x = 1;
		}`, "must precede a for"},
		{`void f() {
			#directive
			for (int i = 0; i < 2; i = i + 1) { }
		}`, "unknown directive"},
	}
	for _, tt := range cases {
		_, err := lang.Parse(tt.src)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("Parse error %v does not contain %q", err, tt.want)
		}
	}
}
