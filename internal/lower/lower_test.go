package lower

import (
	"math"
	"strings"
	"testing"

	"rskip/internal/ir"
	"rskip/internal/machine"
)

// runInt compiles src, runs fn with integer args, and returns the
// integer result.
func runInt(t *testing.T, src, fn string, args ...int64) int64 {
	t.Helper()
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v\n%s", err, src)
	}
	fi := mod.FuncByName(fn)
	if fi < 0 {
		t.Fatalf("no function %q", fn)
	}
	m := machine.New(mod, machine.Config{TraceFn: -1})
	raw := make([]uint64, len(args))
	for i, a := range args {
		raw[i] = uint64(a)
	}
	res, err := m.Run(fi, raw)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return int64(res.Ret)
}

func runFloat(t *testing.T, src, fn string, args ...float64) float64 {
	t.Helper()
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v\n%s", err, src)
	}
	fi := mod.FuncByName(fn)
	m := machine.New(mod, machine.Config{TraceFn: -1})
	raw := make([]uint64, len(args))
	for i, a := range args {
		raw[i] = math.Float64bits(a)
	}
	res, err := m.Run(fi, raw)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return math.Float64frombits(res.Ret)
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"-5 + 2", -3},
		{"7 - 10", -3},
		{"1 < 2", 1},
		{"2 < 1", 0},
		{"2 <= 2", 1},
		{"3 > 2", 1},
		{"3 >= 4", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"!0", 1},
		{"!7", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
		{"int(3.9)", 3},
		{"int(-3.9)", -3},
	}
	for _, tt := range tests {
		got := runInt(t, "int f() { return "+tt.expr+"; }", "f")
		if got != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want float64
	}{
		{"1.5 + 2.25", 3.75},
		{"2.0 * 3.5", 7},
		{"7.0 / 2.0", 3.5},
		{"-2.5", -2.5},
		{"sqrt(9.0)", 3},
		{"fabs(-4.5)", 4.5},
		{"floor(2.9)", 2},
		{"fmin(1.0, 2.0)", 1},
		{"fmax(1.0, 2.0)", 2},
		{"pow(2.0, 10.0)", 1024},
		{"float(3)", 3},
		{"1 + 0.5", 1.5}, // int widens
		{"exp(0.0)", 1},
		{"log(1.0)", 0},
	}
	for _, tt := range tests {
		got := runFloat(t, "float f() { return "+tt.expr+"; }", "f")
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s = %g, want %g", tt.expr, got, tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// g() traps on division by zero; && must not evaluate it when the
	// left side is false.
	src := `
int g(int x) { return 1 / x; }
int f(int x) { return x != 0 && g(x) > 0; }
`
	if got := runInt(t, src, "f", 0); got != 0 {
		t.Errorf("short-circuit && evaluated rhs: got %d", got)
	}
	if got := runInt(t, src, "f", 1); got != 1 {
		t.Errorf("&& true case: got %d", got)
	}
	src2 := `
int g(int x) { return 1 / x; }
int f(int x) { return x == 0 || g(x) > 0; }
`
	if got := runInt(t, src2, "f", 0); got != 1 {
		t.Errorf("short-circuit || evaluated rhs: got %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int fib(int n) {
	int a = 0;
	int b = 1;
	for (int i = 0; i < n; i = i + 1) {
		int tmp = a + b;
		a = b;
		b = tmp;
	}
	return a;
}
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}
int breaker(int n) {
	int s = 0;
	for (int i = 0; i < 100; i = i + 1) {
		if (i == n) { break; }
		if (i % 2 == 1) { continue; }
		s = s + i;
	}
	return s;
}
`
	if got := runInt(t, src, "fib", 10); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
	if got := runInt(t, src, "collatz", 27); got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
	if got := runInt(t, src, "breaker", 7); got != 2+4+6 {
		t.Errorf("breaker(7) = %d, want 12", got)
	}
}

func TestLocalArraysAndCalls(t *testing.T) {
	src := `
int sum(int a[], int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
	return s;
}
int f(int n) {
	int t[32];
	for (int i = 0; i < n; i = i + 1) { t[i] = i * i; }
	return sum(t, n);
}
`
	if got := runInt(t, src, "f", 5); got != 0+1+4+9+16 {
		t.Errorf("f(5) = %d, want 30", got)
	}
}

func TestNestedCallsAndRecursionStack(t *testing.T) {
	// Each call allocates a fresh local array; values must not leak
	// between frames (stack discipline).
	src := `
int inner(int x) {
	int t[4];
	t[0] = x;
	t[1] = x * 2;
	return t[0] + t[1];
}
int f(int x) {
	int t[4];
	t[0] = 100;
	int r = inner(x);
	return r + t[0];
}
`
	if got := runInt(t, src, "f", 3); got != 3+6+100 {
		t.Errorf("f(3) = %d, want 109", got)
	}
}

func TestMemoryArguments(t *testing.T) {
	src := `
void scale(float a[], int n, float k) {
	for (int i = 0; i < n; i = i + 1) { a[i] = a[i] * k; }
}
`
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(mod, machine.Config{TraceFn: -1})
	base := m.Mem.Alloc(4)
	m.Mem.CopyFloats(base, []float64{1, 2, 3, 4})
	_, err = m.Run(0, []uint64{uint64(base), 4, math.Float64bits(2.5)})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Mem.ReadFloats(base, 4)
	want := []float64{2.5, 5, 7.5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("a[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFallOffEndReturnsZero(t *testing.T) {
	if got := runInt(t, "int f(int x) { if (x > 0) { return 1; } }", "f", -1); got != 0 {
		t.Errorf("fall-off return = %d, want 0", got)
	}
	got := runFloat(t, "float f(float x) { if (x > 0.0) { return 1.0; } }", "f", -1)
	if got != 0 {
		t.Errorf("fall-off float return = %g, want 0", got)
	}
}

func TestDeclZeroInit(t *testing.T) {
	if got := runInt(t, "int f() { int x; return x; }", "f"); got != 0 {
		t.Errorf("uninitialized int = %d, want 0", got)
	}
	if got := runFloat(t, "float f() { float x; return x; }", "f"); got != 0 {
		t.Errorf("uninitialized float = %g, want 0", got)
	}
}

func TestCompileRejectsBadSource(t *testing.T) {
	for _, src := range []string{
		"int f() { return y; }",
		"int f( {",
		"void f() { return 1; }",
	} {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestLoweredModuleVerifies(t *testing.T) {
	src := `
float helper(float x) { return x * x; }
void kernel(float a[], float b[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) {
			if (i + j < n) { s = s + helper(a[i + j]); }
		}
		b[i] = s;
	}
}
`
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(mod); err != nil {
		t.Fatalf("Verify: %v\n%s", err, mod)
	}
	text := mod.String()
	for _, want := range []string{"func helper", "func kernel", "condbr", "store"} {
		if !strings.Contains(text, want) {
			t.Errorf("module text missing %q", want)
		}
	}
}

func TestUnreachableCodeDropped(t *testing.T) {
	// Statements after return are silently dropped, not miscompiled.
	if got := runInt(t, "int f() { return 1; return 2; }", "f"); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}
